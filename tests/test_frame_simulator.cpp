/** @file Multi-frame simulation tests (dynamic scenes, Section 8). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "gpu/frame_simulator.hpp"
#include "rays/raygen.hpp"
#include "scene/animation.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    RayGenConfig rg;

    Rig() : scene(makeScene(SceneId::FireplaceRoom, 0.08f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        rg.width = 48;
        rg.height = 48;
        rg.samplesPerPixel = 2;
        rg.viewportFraction = 48.0f / 1024.0f;
    }
};

TEST(FrameSimulator, StaticFramesProduceConsistentResults)
{
    Rig rig;
    RayBatch ao = generateAoRays(rig.scene, rig.bvh, rig.rg);
    FrameSimulator fs(SimConfig::proposed(), true);
    SimResult f1 = fs.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                               ao.rays);
    SimResult f2 = fs.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                               ao.rays);
    EXPECT_EQ(fs.framesRun(), 2u);
    // Hit results are deterministic across frames.
    for (std::size_t i = 0; i < ao.rays.size(); ++i)
        EXPECT_EQ(f1.rayResults[i].hit, f2.rayResults[i].hit);
    // Frame 2 starts with a warm table: at least as many predictions.
    EXPECT_GE(f2.predictedRate(), f1.predictedRate() * 0.95);
}

TEST(FrameSimulator, WarmTableOutperformsColdOnRepeatFrames)
{
    Rig rig;
    RayBatch ao = generateAoRays(rig.scene, rig.bvh, rig.rg);

    FrameSimulator warm(SimConfig::proposed(), true);
    FrameSimulator cold(SimConfig::proposed(), false);
    warm.runFrame(rig.bvh, rig.scene.mesh.triangles(), ao.rays);
    cold.runFrame(rig.bvh, rig.scene.mesh.triangles(), ao.rays);
    SimResult w2 = warm.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                                 ao.rays);
    SimResult c2 = cold.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                                 ao.rays);
    // The preserved table predicts from ray one; the cold one retrains.
    EXPECT_GT(w2.predictedRate(), c2.predictedRate() * 0.99);
    EXPECT_GE(w2.verifiedRate(), c2.verifiedRate() * 0.9);
}

TEST(FrameSimulator, DynamicFramesStayCorrect)
{
    Rig rig;
    SceneAnimator anim(rig.scene.mesh, 0.05f);
    FrameSimulator fs(SimConfig::proposed(), true);

    for (int frame = 0; frame < 3; ++frame) {
        anim.setFrame(frame * 0.4f);
        rig.bvh.refit(rig.scene.mesh.triangles());
        RayBatch ao = generateAoRays(rig.scene, rig.bvh, rig.rg);
        SimResult r = fs.runFrame(rig.bvh,
                                  rig.scene.mesh.triangles(),
                                  ao.rays);
        // Spot-check correctness against the reference traversal.
        for (std::size_t i = 0; i < ao.rays.size(); i += 23) {
            bool ref = traverseAnyHit(rig.bvh,
                                      rig.scene.mesh.triangles(),
                                      ao.rays[i])
                           .hit;
            ASSERT_EQ(ref, r.rayResults[i].hit)
                << "frame " << frame << " ray " << i;
        }
    }
}

TEST(FrameSimulator, ResetPredictorsColdStarts)
{
    Rig rig;
    RayBatch ao = generateAoRays(rig.scene, rig.bvh, rig.rg);
    FrameSimulator fs(SimConfig::proposed(), true);
    fs.runFrame(rig.bvh, rig.scene.mesh.triangles(), ao.rays);
    fs.resetPredictors();
    SimResult r = fs.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                              ao.rays);
    FrameSimulator fresh(SimConfig::proposed(), true);
    SimResult f = fresh.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                                 ao.rays);
    EXPECT_EQ(r.stats.get("rays_predicted"),
              f.stats.get("rays_predicted"));
}

TEST(FrameSimulator, BaselineConfigHasNoPredictors)
{
    Rig rig;
    RayBatch ao = generateAoRays(rig.scene, rig.bvh, rig.rg);
    FrameSimulator fs(SimConfig::baseline(), true);
    SimResult r = fs.runFrame(rig.bvh, rig.scene.mesh.triangles(),
                              ao.rays);
    EXPECT_EQ(r.stats.get("rays_predicted"), 0u);
    EXPECT_EQ(r.stats.get("rays_completed"), ao.rays.size());
}

} // namespace
} // namespace rtp
