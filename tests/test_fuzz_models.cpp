/**
 * @file
 * Reference-model fuzz tests: long random operation sequences on the
 * timed/structured components, checked step-by-step against trivially
 * correct reference implementations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <list>
#include <map>
#include <vector>

#include "core/hash.hpp"
#include "core/predictor_table.hpp"
#include "mem/cache.hpp"
#include "rtunit/traversal_stack.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

// ---- cache vs reference LRU -------------------------------------------

/** Trivially correct fully-associative LRU over line addresses. */
class RefLru
{
  public:
    explicit RefLru(std::size_t lines) : capacity_(lines) {}

    /** @return true if resident (and refreshes recency). */
    bool
    access(std::uint64_t line)
    {
        auto it = std::find(order_.begin(), order_.end(), line);
        if (it != order_.end()) {
            order_.erase(it);
            order_.push_front(line);
            return true;
        }
        order_.push_front(line);
        if (order_.size() > capacity_)
            order_.pop_back();
        return false;
    }

  private:
    std::size_t capacity_;
    std::list<std::uint64_t> order_;
};

TEST(FuzzModels, FullyAssociativeCacheMatchesReferenceLru)
{
    const std::uint32_t lines = 16;
    CacheModel cache({lines * 128, 128, 0, 1, "fuzz"});
    RefLru ref(lines);
    Rng rng(91);
    Cycle cycle = 0;
    auto fill = [](std::uint64_t, Cycle c) { return c; }; // instant

    for (int i = 0; i < 20000; ++i) {
        // Skewed address distribution to get plenty of both hits and
        // conflict evictions.
        std::uint64_t line = rng.nextBounded(lines * 3);
        cycle += 2; // fills complete instantly, no in-flight merging
        CacheAccess a = cache.access(line * 128, cycle, fill);
        bool ref_hit = ref.access(line);
        ASSERT_EQ(ref_hit, a.hit) << "op " << i << " line " << line;
    }
}

TEST(FuzzModels, SetAssociativeCacheRespectsSetIsolation)
{
    // 2 sets x 2 ways: accesses to set 0 must never evict set 1 lines.
    CacheModel cache({512, 128, 2, 1, "fuzz"});
    auto fill = [](std::uint64_t, Cycle c) { return c; };
    Rng rng(92);
    cache.access(1 * 128, 0, fill); // set 1 resident
    cache.access(3 * 128, 1, fill); // set 1 resident
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t even_line = rng.nextBounded(64) * 2; // set 0 only
        cache.access(even_line * 128, 10 + i, fill);
        ASSERT_TRUE(cache.contains(1 * 128)) << "op " << i;
        ASSERT_TRUE(cache.contains(3 * 128)) << "op " << i;
    }
}

// ---- predictor table vs reference map ----------------------------------

/** Reference model: per-set LRU map of tag -> node (1 node/entry). */
class RefTable
{
  public:
    RefTable(std::uint32_t sets, std::uint32_t ways, int tag_bits,
             int index_bits)
        : sets_(sets), ways_(ways), tagBits_(tag_bits),
          indexBits_(index_bits), entries_(sets)
    {}

    std::optional<std::uint32_t>
    lookup(std::uint32_t hash)
    {
        auto &set = entries_[foldHash(hash, tagBits_, indexBits_)];
        auto it = std::find_if(set.begin(), set.end(),
                               [&](auto &e) { return e.first == hash; });
        if (it == set.end())
            return std::nullopt;
        auto entry = *it;
        set.erase(it);
        set.push_front(entry); // refresh recency
        return entry.second;
    }

    void
    update(std::uint32_t hash, std::uint32_t node)
    {
        auto &set = entries_[foldHash(hash, tagBits_, indexBits_)];
        auto it = std::find_if(set.begin(), set.end(),
                               [&](auto &e) { return e.first == hash; });
        if (it != set.end())
            set.erase(it);
        set.push_front({hash, node});
        if (set.size() > ways_)
            set.pop_back();
    }

  private:
    std::uint32_t sets_;
    std::uint32_t ways_;
    int tagBits_;
    int indexBits_;
    std::vector<std::deque<std::pair<std::uint32_t, std::uint32_t>>>
        entries_;
};

TEST(FuzzModels, PredictorTableMatchesReferenceModel)
{
    PredictorTableConfig cfg;
    cfg.numEntries = 32;
    cfg.ways = 4;
    cfg.nodesPerEntry = 1;
    const int tag_bits = 10;
    PredictorTable table(cfg, tag_bits);
    RefTable ref(table.numSets(), cfg.ways, tag_bits,
                 table.indexBits());

    Rng rng(93);
    for (int i = 0; i < 30000; ++i) {
        std::uint32_t hash = rng.nextBounded(1 << tag_bits);
        if (rng.nextFloat() < 0.5f) {
            std::uint32_t node = rng.nextBounded(1000);
            table.update(hash, node);
            ref.update(hash, node);
        } else {
            auto got = table.lookup(hash);
            auto want = ref.lookup(hash);
            ASSERT_EQ(want.has_value(), got.has_value())
                << "op " << i << " hash " << hash;
            if (want) {
                ASSERT_EQ(got->size(), 1u);
                ASSERT_EQ(*want, (*got)[0]) << "op " << i;
            }
        }
    }
}

// ---- traversal stack vs std::vector -------------------------------------

TEST(FuzzModels, TraversalStackMatchesPlainStack)
{
    Rng rng(94);
    for (std::uint32_t hw : {2u, 4u, 8u}) {
        TraversalStack s(hw, 2);
        std::vector<std::uint32_t> ref;
        for (int i = 0; i < 20000; ++i) {
            if (ref.empty() || rng.nextFloat() < 0.55f) {
                std::uint32_t v = rng.nextU32();
                s.push(v);
                ref.push_back(v);
            } else {
                auto got = s.pop();
                ASSERT_TRUE(got.has_value());
                ASSERT_EQ(*got, ref.back()) << "op " << i;
                ref.pop_back();
            }
            ASSERT_EQ(s.size(), ref.size());
            ASSERT_EQ(s.empty(), ref.empty());
        }
        // Drain completely.
        while (!ref.empty()) {
            ASSERT_EQ(*s.pop(), ref.back());
            ref.pop_back();
        }
        ASSERT_FALSE(s.pop().has_value());
    }
}

// ---- fold hash properties -----------------------------------------------

TEST(FuzzModels, FoldHashStaysInRangeAndIsDeterministic)
{
    Rng rng(95);
    for (int i = 0; i < 20000; ++i) {
        std::uint32_t h = rng.nextU32() & 0x7fffffff;
        int n = 1 + static_cast<int>(rng.nextBounded(31));
        int m = 1 + static_cast<int>(rng.nextBounded(16));
        std::uint32_t folded =
            foldHash(h & ((n >= 31) ? ~0u : ((1u << n) - 1)), n, m);
        ASSERT_LT(folded, 1u << m);
        ASSERT_EQ(folded,
                  foldHash(h & ((n >= 31) ? ~0u : ((1u << n) - 1)), n,
                           m));
    }
}

} // namespace
} // namespace rtp
