/** @file Per-scene structural checks of the procedural generators. */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "rays/raygen.hpp"
#include "scene/generators.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

/** Fraction of a regular grid of downward rays that hit the scene. */
double
floorCoverage(const Mesh &mesh)
{
    Bvh bvh = BvhBuilder().build(mesh.triangles());
    Aabb b = bvh.sceneBounds();
    int hits = 0, total = 0;
    for (int i = 1; i < 12; ++i) {
        for (int j = 1; j < 12; ++j) {
            Ray r;
            r.origin = {b.lo.x + b.extent().x * i / 12.0f,
                        b.hi.y - 0.01f * b.extent().y,
                        b.lo.z + b.extent().z * j / 12.0f};
            r.dir = {0, -1, 0};
            r.tMax = b.extent().y * 2.0f;
            total++;
            if (traverseAnyHit(bvh, mesh.triangles(), r).hit)
                hits++;
        }
    }
    return static_cast<double>(hits) / total;
}

TEST(Generators, SibenikIsLongHall)
{
    Camera cam;
    Mesh m = genSibenik(0.04f, cam);
    Aabb b = m.bounds();
    // Nave: longest axis much longer than width, tall interior.
    EXPECT_GT(b.extent().z, 1.8f * b.extent().x);
    EXPECT_GT(b.extent().y, 10.0f);
}

TEST(Generators, SponzaIsAtrium)
{
    Camera cam;
    Mesh m = genCrytekSponza(0.04f, cam);
    Aabb b = m.bounds();
    EXPECT_GT(b.extent().z, b.extent().x);
    EXPECT_GT(m.size(), 3000u);
}

TEST(Generators, LostEmpireIsTerrainLike)
{
    Camera cam;
    Mesh m = genLostEmpire(0.04f, cam);
    // Terrain of boxes: downward rays almost always hit.
    EXPECT_GT(floorCoverage(m), 0.9);
}

TEST(Generators, InteriorsHaveFloors)
{
    // Downward rays inside a closed room must hit the floor.
    for (SceneId id : {SceneId::LivingRoom, SceneId::FireplaceRoom,
                       SceneId::CountryKitchen,
                       SceneId::BistroInterior}) {
        Scene s = makeScene(id, 0.04f);
        EXPECT_GT(floorCoverage(s.mesh), 0.95)
            << sceneShortName(id);
    }
}

TEST(Generators, RelativeTriangleBudgetsOrdered)
{
    // At fixed detail, scene sizes should be ordered roughly like the
    // paper's Table 1 extremes: CK and BI are the densest, SB among
    // the lightest.
    auto count = [](SceneId id) {
        return makeScene(id, 0.08f).mesh.size();
    };
    std::size_t sb = count(SceneId::Sibenik);
    std::size_t ck = count(SceneId::CountryKitchen);
    std::size_t bi = count(SceneId::BistroInterior);
    EXPECT_GT(ck, sb);
    EXPECT_GT(bi, sb);
}

TEST(Generators, PrimaryRaysHitEveryScene)
{
    // The preset cameras must look at geometry: the large majority of
    // primary rays hit.
    for (SceneId id : allSceneIds()) {
        Scene s = makeScene(id, 0.05f);
        Bvh bvh = BvhBuilder().build(s.mesh.triangles());
        int hits = 0, total = 0;
        for (int i = 0; i < 10; ++i) {
            for (int j = 0; j < 10; ++j) {
                Ray r = s.camera.generateRay((i + 0.5f) / 10,
                                             (j + 0.5f) / 10, 1.0f);
                total++;
                if (traverseClosestHit(bvh, s.mesh.triangles(), r).hit)
                    hits++;
            }
        }
        EXPECT_GT(static_cast<double>(hits) / total, 0.5)
            << sceneShortName(id);
    }
}

TEST(Generators, AoHitRatesInPlausibleBand)
{
    // AO rays in closed interiors should find occluders for a sizable
    // fraction of samples (the paper's workloads behave this way), but
    // not for literally every ray.
    for (SceneId id : {SceneId::Sibenik, SceneId::FireplaceRoom}) {
        Scene s = makeScene(id, 0.06f);
        Bvh bvh = BvhBuilder().build(s.mesh.triangles());
        RayGenConfig rg;
        rg.width = 24;
        rg.height = 24;
        rg.samplesPerPixel = 2;
        RayBatch ao = generateAoRays(s, bvh, rg);
        int hits = 0;
        for (const Ray &r : ao.rays) {
            if (traverseAnyHit(bvh, s.mesh.triangles(), r).hit)
                hits++;
        }
        double rate = static_cast<double>(hits) / ao.rays.size();
        EXPECT_GT(rate, 0.3) << sceneShortName(id);
        EXPECT_LT(rate, 0.999) << sceneShortName(id);
    }
}

} // namespace
} // namespace rtp
