/** @file Experiment harness / workload cache tests. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exp/harness.hpp"
#include "gpu/config.hpp"

namespace rtp {
namespace {

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
}

TEST(WorkloadConfig, EnvironmentScaling)
{
    unsetenv("RTP_SCALE");
    WorkloadConfig base = WorkloadConfig::fromEnvironment();
    EXPECT_NEAR(base.detail, 0.12f, 1e-5f);
    EXPECT_EQ(base.raygen.width, 96);
    EXPECT_NEAR(base.raygen.viewportFraction, 96.0f / 1024.0f, 1e-5f);

    setenv("RTP_SCALE", "4", 1);
    WorkloadConfig scaled = WorkloadConfig::fromEnvironment();
    EXPECT_GT(scaled.detail, base.detail);
    EXPECT_GT(scaled.raygen.width, base.raygen.width);
    // Pixel density (width / fraction) stays at 1024.
    EXPECT_NEAR(scaled.raygen.width / scaled.raygen.viewportFraction,
                1024.0f, 1.0f);

    setenv("RTP_SCALE", "9999", 1); // clamped
    WorkloadConfig big = WorkloadConfig::fromEnvironment();
    EXPECT_LE(big.detail, 1.0f);

    // Strict parsing (exp/env_config.hpp): non-positive or garbage
    // values throw instead of being silently clamped to the default.
    setenv("RTP_SCALE", "-3", 1);
    EXPECT_THROW(WorkloadConfig::fromEnvironment(),
                 std::invalid_argument);
    setenv("RTP_SCALE", "4x", 1);
    EXPECT_THROW(WorkloadConfig::fromEnvironment(),
                 std::invalid_argument);
    unsetenv("RTP_SCALE");
}

TEST(WorkloadCache, CachesPerScene)
{
    WorkloadConfig wc;
    wc.detail = 0.03f;
    wc.raygen.width = 16;
    wc.raygen.height = 16;
    WorkloadCache cache(wc);
    const Workload &a = cache.get(SceneId::Sibenik);
    const Workload &b = cache.get(SceneId::Sibenik);
    EXPECT_EQ(&a, &b); // same object: built once
    EXPECT_GT(a.ao.rays.size(), 0u);
    EXPECT_EQ(a.ao.rays.size(), a.aoSorted.rays.size());
}

TEST(WorkloadCache, SortedBatchIsMortonOrdered)
{
    WorkloadConfig wc;
    wc.detail = 0.03f;
    wc.raygen.width = 24;
    wc.raygen.height = 24;
    WorkloadCache cache(wc);
    const Workload &w = cache.get(SceneId::FireplaceRoom);
    // Sorted copy holds the same ray multiset (spot-check a checksum).
    double sum_a = 0, sum_b = 0;
    for (const Ray &r : w.ao.rays)
        sum_a += r.origin.x + r.dir.y;
    for (const Ray &r : w.aoSorted.rays)
        sum_b += r.origin.x + r.dir.y;
    EXPECT_NEAR(sum_a, sum_b, 1e-3);
}

TEST(Harness, RunPairProducesBothResults)
{
    WorkloadConfig wc;
    wc.detail = 0.03f;
    wc.raygen.width = 24;
    wc.raygen.height = 24;
    wc.raygen.viewportFraction = 24.0f / 1024.0f;
    WorkloadCache cache(wc);
    const Workload &w = cache.get(SceneId::Sibenik);
    RunOutcome out =
        runPair(w, SimConfig::baseline(), SimConfig::proposed());
    EXPECT_EQ(out.scene, "SB");
    EXPECT_GT(out.baseline.cycles, 0u);
    EXPECT_GT(out.treatment.cycles, 0u);
    EXPECT_GT(out.speedup(), 0.0);
    EXPECT_EQ(out.baseline.stats.get("rays_predicted"), 0u);
    EXPECT_GT(out.treatment.stats.get("rays_predicted"), 0u);
}

TEST(Harness, EnsureParentDirCreatesNestedDirectories)
{
    namespace fs = std::filesystem;
    fs::path root = fs::temp_directory_path() / "rtp_harness_dirtest";
    fs::remove_all(root);
    fs::path file = root / "a" / "b" / "out.json";
    EXPECT_TRUE(ensureParentDir(file.string()));
    EXPECT_TRUE(fs::is_directory(root / "a" / "b"));
    // Idempotent when the directory already exists.
    EXPECT_TRUE(ensureParentDir(file.string()));
    // A bare filename has no directory portion to create.
    EXPECT_TRUE(ensureParentDir("out.json"));
    fs::remove_all(root);
}

TEST(Harness, JsonSinkCreatesMissingOutputDirectory)
{
    // Regression test: RTP_JSON_DIR pointing at a directory that does
    // not exist yet (e.g. bench/baselines on a fresh checkout) must be
    // created recursively instead of silently failing the write.
    namespace fs = std::filesystem;
    fs::path root = fs::temp_directory_path() / "rtp_harness_sinktest";
    fs::remove_all(root);
    fs::path dir = root / "nested" / "deeper";
    setenv("RTP_JSON_DIR", dir.string().c_str(), 1);
    {
        JsonResultSink sink("bench_dirtest");
        EXPECT_TRUE(sink.close());
        EXPECT_TRUE(fs::exists(sink.path()));
        EXPECT_EQ(fs::path(sink.path()).parent_path(), dir);
        std::ifstream in(sink.path());
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_NE(text.find("\"bench\":\"bench_dirtest\""),
                  std::string::npos);
    }
    unsetenv("RTP_JSON_DIR");
    fs::remove_all(root);
}

TEST(Harness, PctFormatting)
{
    EXPECT_EQ(pct(0.263), "+26.3%");
    EXPECT_EQ(pct(-0.05), "-5.0%");
    EXPECT_EQ(pct(0.0), "+0.0%");
}

TEST(GpuConfig, DescribeMentionsKeyKnobs)
{
    std::string base = describe(SimConfig::baseline());
    EXPECT_NE(base.find("no predictor"), std::string::npos);
    SimConfig p = SimConfig::proposed();
    p.rt.additionalWarps = 4;
    std::string pd = describe(p);
    EXPECT_NE(pd.find("1024"), std::string::npos);
    EXPECT_NE(pd.find("GoUp 3"), std::string::npos);
    EXPECT_NE(pd.find("+4 warps"), std::string::npos);
}

TEST(GpuConfig, FactoryDefaultsMatchTables)
{
    SimConfig p = SimConfig::proposed();
    // Table 2: 2 SMs; Table 3 predictor settings.
    EXPECT_EQ(p.numSms, 2u);
    EXPECT_EQ(p.predictor.table.numEntries, 1024u);
    EXPECT_EQ(p.predictor.table.ways, 4u);
    EXPECT_EQ(p.predictor.table.nodesPerEntry, 1u);
    EXPECT_EQ(p.predictor.goUpLevel, 3u);
    EXPECT_EQ(p.predictor.accessPorts, 4u);
    EXPECT_EQ(p.predictor.hash.originBits, 5);
    EXPECT_EQ(p.predictor.hash.directionBits, 3);
    EXPECT_TRUE(p.rt.repackEnabled);
    EXPECT_EQ(p.memory.l1.sizeBytes, 64u * 1024u);
    EXPECT_EQ(p.memory.l2.sizeBytes, 1024u * 1024u);

    SimConfig b = SimConfig::baseline();
    EXPECT_FALSE(b.predictor.enabled);
    EXPECT_FALSE(b.rt.repackEnabled);
}

} // namespace
} // namespace rtp
