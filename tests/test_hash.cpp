/** @file Ray hashing scheme tests (Section 4.2). */

#include <gtest/gtest.h>

#include "core/hash.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

Aabb
unitSceneBounds()
{
    return Aabb{{0, 0, 0}, {100, 100, 100}};
}

Ray
makeRay(Vec3 o, Vec3 d)
{
    Ray r;
    r.origin = o;
    r.dir = normalize(d);
    return r;
}

TEST(FoldHash, IdentityWhenNarrow)
{
    EXPECT_EQ(foldHash(0x5A, 8, 8), 0x5Au);
    EXPECT_EQ(foldHash(0x5A, 7, 8), 0x5Au);
}

TEST(FoldHash, XorFoldsComponents)
{
    // 16 bits into 8: high byte XOR low byte.
    EXPECT_EQ(foldHash(0xAB12, 16, 8), 0xABu ^ 0x12u);
    // 15 bits into 8: component 2 has 7 bits.
    EXPECT_EQ(foldHash(0x7FFF, 15, 8), 0xFFu ^ 0x7Fu);
}

TEST(FoldHash, ZeroWidth)
{
    EXPECT_EQ(foldHash(0x1234, 16, 0), 0u);
}

TEST(GridSpherical, DefaultWidthIs15Bits)
{
    RayHasher h({HashFunction::GridSpherical, 5, 3, 0.15f},
                unitSceneBounds());
    EXPECT_EQ(h.hashBits(), 15);
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        Ray r = makeRay({rng.nextRange(0, 100), rng.nextRange(0, 100),
                         rng.nextRange(0, 100)},
                        {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                         rng.nextRange(-1, 1) + 1e-3f});
        EXPECT_LT(h.hash(r), 1u << 15);
    }
}

TEST(GridSpherical, SameCellSameDirectionCollides)
{
    RayHasher h({HashFunction::GridSpherical, 5, 3, 0.15f},
                unitSceneBounds());
    // 5 origin bits over 100 units -> 3.125-unit cells. Directions sit
    // comfortably inside one theta/phi bucket (22.5/32 degree buckets).
    Ray a = makeRay({10.0f, 10.0f, 10.0f}, {1.0f, 0.10f, 0.10f});
    Ray b = makeRay({10.5f, 10.2f, 10.9f}, {1.0f, 0.12f, 0.11f});
    EXPECT_EQ(h.hash(a), h.hash(b));
}

TEST(GridSpherical, FarOriginsDiffer)
{
    RayHasher h({HashFunction::GridSpherical, 5, 3, 0.15f},
                unitSceneBounds());
    Ray a = makeRay({10, 10, 10}, {0, 0, 1});
    Ray b = makeRay({90, 90, 90}, {0, 0, 1});
    EXPECT_NE(h.hash(a), h.hash(b));
}

TEST(GridSpherical, OppositeDirectionsDiffer)
{
    RayHasher h({HashFunction::GridSpherical, 5, 3, 0.15f},
                unitSceneBounds());
    Ray a = makeRay({50, 50, 50}, {0, 0, 1});
    Ray b = makeRay({50, 50, 50}, {0, 0, -1});
    EXPECT_NE(h.hash(a), h.hash(b));
}

TEST(GridSpherical, MoreBitsTightenCollisions)
{
    // With more origin bits, nearby-but-distinct origins stop colliding.
    RayHasher coarse({HashFunction::GridSpherical, 3, 3, 0.15f},
                     unitSceneBounds());
    RayHasher fine({HashFunction::GridSpherical, 5, 3, 0.15f},
                   unitSceneBounds());
    Rng rng(2);
    int coarse_coll = 0, fine_coll = 0;
    for (int i = 0; i < 2000; ++i) {
        Vec3 o{rng.nextRange(0, 95), rng.nextRange(0, 95),
               rng.nextRange(0, 95)};
        Vec3 d{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
               rng.nextRange(-1, 1) + 1e-3f};
        Ray a = makeRay(o, d);
        Ray b = makeRay(o + Vec3{4.0f, 0, 0}, d);
        if (coarse.hash(a) == coarse.hash(b))
            coarse_coll++;
        if (fine.hash(a) == fine.hash(b))
            fine_coll++;
    }
    EXPECT_GT(coarse_coll, fine_coll);
}

TEST(TwoPoint, WidthAndDeterminism)
{
    RayHasher h({HashFunction::TwoPoint, 5, 3, 0.15f},
                unitSceneBounds());
    EXPECT_EQ(h.hashBits(), 15);
    Ray r = makeRay({10, 20, 30}, {1, 1, 0});
    EXPECT_EQ(h.hash(r), h.hash(r));
}

TEST(TwoPoint, LengthRatioChangesHash)
{
    RayHasher near({HashFunction::TwoPoint, 5, 3, 0.05f},
                   unitSceneBounds());
    RayHasher far({HashFunction::TwoPoint, 5, 3, 0.35f},
                  unitSceneBounds());
    Rng rng(3);
    int diff = 0;
    for (int i = 0; i < 200; ++i) {
        Ray r = makeRay({rng.nextRange(10, 90), rng.nextRange(10, 90),
                         rng.nextRange(10, 90)},
                        {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                         rng.nextRange(-1, 1) + 1e-3f});
        if (near.hash(r) != far.hash(r))
            diff++;
    }
    EXPECT_GT(diff, 100);
}

TEST(TwoPoint, SimilarRaysCollide)
{
    RayHasher h({HashFunction::TwoPoint, 4, 3, 0.15f},
                unitSceneBounds());
    Ray a = makeRay({40.0f, 40.0f, 40.0f}, {0, 0, 1});
    Ray b = makeRay({40.3f, 40.1f, 40.2f}, {0.005f, 0.0f, 1});
    EXPECT_EQ(h.hash(a), h.hash(b));
}

TEST(GridHashBlock, QuantisesAgainstSceneBounds)
{
    RayHasher h({HashFunction::GridSpherical, 5, 3, 0.15f},
                unitSceneBounds());
    // Corners map to extreme cells.
    EXPECT_EQ(h.gridHash({0, 0, 0}), 0u);
    std::uint32_t max_cell = 31;
    EXPECT_EQ(h.gridHash({100, 100, 100}),
              (max_cell << 10) | (max_cell << 5) | max_cell);
    // Out-of-bounds points clamp.
    EXPECT_EQ(h.gridHash({-10, -10, -10}), 0u);
}

/**
 * The core predictor premise (Section 4.2): nearby similar rays collide
 * far more often than random ray pairs.
 */
TEST(Hashing, LocalityBeatsRandomProperty)
{
    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        RayHasher h({fn, 5, 3, 0.15f}, unitSceneBounds());
        Rng rng(4);
        int near_coll = 0, rand_coll = 0;
        const int n = 3000;
        for (int i = 0; i < n; ++i) {
            Vec3 o{rng.nextRange(5, 95), rng.nextRange(5, 95),
                   rng.nextRange(5, 95)};
            Vec3 d = normalize(Vec3{rng.nextRange(-1, 1),
                                    rng.nextRange(-1, 1),
                                    rng.nextRange(-1, 1) + 1e-3f});
            Ray a = makeRay(o, d);
            Ray near_b = makeRay(o + Vec3{0.3f, 0.3f, 0.3f},
                                 d + Vec3{0.02f, 0.02f, 0.0f});
            Ray rand_b = makeRay({rng.nextRange(5, 95),
                                  rng.nextRange(5, 95),
                                  rng.nextRange(5, 95)},
                                 {rng.nextRange(-1, 1),
                                  rng.nextRange(-1, 1),
                                  rng.nextRange(-1, 1) + 1e-3f});
            if (h.hash(a) == h.hash(near_b))
                near_coll++;
            if (h.hash(a) == h.hash(rand_b))
                rand_coll++;
        }
        EXPECT_GT(near_coll, 5 * std::max(1, rand_coll))
            << "hash function " << static_cast<int>(fn);
    }
}

} // namespace
} // namespace rtp
