/**
 * @file
 * Degenerate-ray and bit-width hardening tests for the hash layer
 * (core/hash.hpp): zero/denormal/NaN directions, NaN and huge origins,
 * the foldHash bit-width contract, and the phi-wrap / theta-pole seam
 * behaviour of the Grid Spherical function. Run these under UBSan —
 * before the hardening, several of them executed undefined casts or
 * oversized shifts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/hash.hpp"
#include "core/predictor_table.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Aabb
bounds()
{
    return Aabb{{0, 0, 0}, {100, 100, 100}};
}

Ray
rawRay(Vec3 o, Vec3 d)
{
    Ray r;
    r.origin = o;
    r.dir = d; // deliberately NOT normalized
    return r;
}

TEST(CanonicalUnitDirection, ZeroAndDenormalFallBack)
{
    const Vec3 canon{1.0f, 0.0f, 0.0f};
    Vec3 z = canonicalUnitDirection({0, 0, 0});
    EXPECT_EQ(z.x, canon.x);
    EXPECT_EQ(z.y, canon.y);
    EXPECT_EQ(z.z, canon.z);
    // Small enough that the squared length is below FLT_MIN.
    Vec3 d = canonicalUnitDirection({1e-30f, 0, 0});
    EXPECT_EQ(d.x, canon.x);
    EXPECT_EQ(d.y, canon.y);
    EXPECT_EQ(d.z, canon.z);
}

TEST(CanonicalUnitDirection, NanAndInfFallBack)
{
    for (Vec3 v : {Vec3{kNan, 1, 0}, Vec3{0, kNan, 0}, Vec3{1, 1, kNan},
                   Vec3{kInf, 0, 0}, Vec3{1e30f, 1e30f, 0}}) {
        Vec3 d = canonicalUnitDirection(v);
        EXPECT_EQ(d.x, 1.0f);
        EXPECT_EQ(d.y, 0.0f);
        EXPECT_EQ(d.z, 0.0f);
    }
}

TEST(CanonicalUnitDirection, MatchesNormalizeForRegularInput)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        Vec3 v{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        if (length(v) < 1e-3f)
            continue;
        Vec3 a = canonicalUnitDirection(v);
        Vec3 b = normalize(v);
        EXPECT_EQ(a.x, b.x);
        EXPECT_EQ(a.y, b.y);
        EXPECT_EQ(a.z, b.z);
    }
}

/**
 * Degenerate directions hash to the canonical +x bucket: the same
 * value a well-formed +x ray from the same origin produces, so stray
 * rays neither crash nor pollute arbitrary table sets.
 */
TEST(DegenerateRays, ZeroDirectionHashesToCanonicalBucket)
{
    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        RayHasher h({fn, 5, 3, 0.15f}, bounds());
        std::uint32_t canon =
            h.hash(rawRay({50, 50, 50}, {1, 0, 0}));
        EXPECT_EQ(h.hash(rawRay({50, 50, 50}, {0, 0, 0})), canon);
        EXPECT_EQ(h.hash(rawRay({50, 50, 50}, {1e-30f, 0, 0})), canon);
        EXPECT_EQ(h.hash(rawRay({50, 50, 50}, {kNan, 1, 0})), canon);
        EXPECT_EQ(h.hash(rawRay({50, 50, 50}, {0, kInf, 0})), canon);
    }
}

TEST(DegenerateRays, NanOriginClampsToLowestCell)
{
    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        RayHasher h({fn, 5, 3, 0.15f}, bounds());
        // NaN coordinates quantise to cell 0 per axis — the same
        // bucket as an origin at the box's low corner.
        std::uint32_t lo = h.hash(rawRay({-1e30f, -1e30f, -1e30f},
                                         {0, 1, 0}));
        EXPECT_EQ(h.hash(rawRay({kNan, kNan, kNan}, {0, 1, 0})), lo);
        EXPECT_LT(h.hash(rawRay({kNan, 50, 50}, {0, 1, 0})),
                  1u << h.hashBits());
    }
}

TEST(DegenerateRays, HugeOriginsStayInRange)
{
    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        RayHasher h({fn, 5, 3, 0.15f}, bounds());
        std::uint32_t width = h.hashBits();
        for (Vec3 o : {Vec3{1e30f, 1e30f, 1e30f},
                       Vec3{-1e30f, 50, 1e20f}, Vec3{kInf, 0, 0}}) {
            std::uint32_t hash = h.hash(rawRay(o, {0, 0, 1}));
            EXPECT_LT(hash, 1u << width);
            // Beyond-the-box origins clamp to an edge cell, so the
            // hash is also stable (same input, same bucket).
            EXPECT_EQ(h.hash(rawRay(o, {0, 0, 1})), hash);
        }
    }
}

/**
 * The foldHash bit-width contract (core/hash.hpp): m_bits >= 32
 * returns the hash unchanged, m_bits <= 0 returns 0, and claimed
 * input widths past 32 fold the same 32 real bits.
 */
TEST(FoldHashContract, WideWidthsAreDefined)
{
    EXPECT_EQ(foldHash(0xDEADBEEF, 33, 32), 0xDEADBEEFu);
    EXPECT_EQ(foldHash(0xDEADBEEF, 64, 40), 0xDEADBEEFu);
    EXPECT_EQ(foldHash(0xDEADBEEF, 33, -1), 0u);
    // n_bits past 32 folds exactly the 32 real bits: same result as
    // claiming 32.
    for (int m = 1; m <= 31; ++m)
        EXPECT_EQ(foldHash(0xDEADBEEF, 64, m),
                  foldHash(0xDEADBEEF, 32, m))
            << "m_bits=" << m;
}

/**
 * Property over the simfuzz configuration space (tools/simfuzz.cpp
 * deriveConfig: originBits 2..8, directionBits 2..6, both hash
 * functions, entries {16,64,256,1024}, ways {1,2,4}): for every
 * config and a mixed bag of well-formed and degenerate rays, the
 * folded hash stays inside the table's set-index range.
 */
TEST(FoldHashContract, FoldedHashesIndexEveryFuzzerTable)
{
    const std::uint32_t entries[] = {16, 64, 256, 1024};
    const std::uint32_t ways[] = {1, 2, 4};
    Rng rng(99);
    std::vector<Ray> rays;
    for (int i = 0; i < 64; ++i)
        rays.push_back(rawRay({rng.nextRange(-10, 110),
                               rng.nextRange(-10, 110),
                               rng.nextRange(-10, 110)},
                              {rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1)}));
    rays.push_back(rawRay({50, 50, 50}, {0, 0, 0}));
    rays.push_back(rawRay({kNan, 50, 50}, {kNan, 0, 0}));
    rays.push_back(rawRay({1e30f, -1e30f, 0}, {0, 1, 0}));

    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        for (int n = 2; n <= 8; ++n) {
            for (int m = 2; m <= 6; ++m) {
                RayHasher h({fn, n, m, 0.15f}, bounds());
                for (std::uint32_t e : entries) {
                    for (std::uint32_t w : ways) {
                        std::uint32_t sets = e / w;
                        int index_bits = 0;
                        while ((1u << index_bits) < sets)
                            index_bits++;
                        for (const Ray &r : rays) {
                            std::uint32_t folded = foldHash(
                                h.hash(r), h.hashBits(), index_bits);
                            ASSERT_LT(folded, sets)
                                << "fn=" << static_cast<int>(fn)
                                << " n=" << n << " m=" << m
                                << " entries=" << e << " ways=" << w;
                        }
                    }
                }
            }
        }
    }
}

/** Degenerate rays flow through the full table path without UB. */
TEST(DegenerateRays, TableLookupAndTrainAreDefined)
{
    for (HashFunction fn :
         {HashFunction::GridSpherical, HashFunction::TwoPoint}) {
        RayHasher h({fn, 5, 3, 0.15f}, bounds());
        PredictorTable table({64, 2, 2, NodeReplacement::LRU, 2},
                             h.hashBits());
        std::vector<Ray> bad = {
            rawRay({50, 50, 50}, {0, 0, 0}),
            rawRay({kNan, kNan, kNan}, {kNan, kNan, kNan}),
            rawRay({1e30f, 1e30f, 1e30f}, {0, kInf, 0}),
        };
        std::vector<std::uint32_t> nodes;
        for (const Ray &r : bad) {
            std::uint32_t hash = h.hash(r);
            table.update(hash, 7);
            nodes.clear();
            table.lookupInto(hash, nodes);
            ASSERT_EQ(nodes.size(), 1u);
            EXPECT_EQ(nodes[0], 7u);
        }
    }
}

/**
 * Phi 0/360 wrap: the Grid Spherical hash quantises phi linearly, so
 * directions an epsilon either side of the +x axis land in the two
 * END buckets (0 and the top occupied bucket) — the seam diverges by
 * design rather than wrapping, and this test documents and pins that.
 * Directions within one bucket of each other on the same side
 * collide.
 */
TEST(SphericalSeams, PhiWrapDivergesToEndBuckets)
{
    const int m = 3; // directionBits: phi gets m+1 = 4 key bits
    RayHasher h({HashFunction::GridSpherical, 5, m, 0.15f}, bounds());
    const Vec3 o{50, 50, 50};
    // 1 degree either side of phi = 0 (the +x axis), in the z = 0
    // equator plane (theta = 90).
    float e = 3.14159265f / 180.0f;
    Ray above = rawRay(o, {std::cos(e), std::sin(e), 0});
    Ray below = rawRay(o, {std::cos(e), -std::sin(e), 0});
    // Same origin cell, phi buckets 0 vs top: hashes must differ.
    EXPECT_NE(h.hash(above), h.hash(below));
    // And both sit where the quantiser puts the seam's end buckets:
    // phi 1 deg -> bucket 0, phi 359 deg -> bucket 359 >> 5 = 11.
    std::uint32_t diff = h.hash(above) ^ h.hash(below);
    EXPECT_EQ(diff, 11u); // phi-key field only; origin/theta agree
    // A pair on the same side one tenth of a degree apart collides.
    Ray near1 = rawRay(o, {std::cos(0.5f * e), std::sin(0.5f * e), 0});
    EXPECT_EQ(h.hash(above), h.hash(near1));
}

/**
 * Theta poles: at +z / -z the azimuth is ill-defined; the hash
 * resolves it as atan2(0, 0) = 0, so exactly-polar directions are
 * deterministic, and near-polar directions with different phi may
 * diverge only in the phi field while agreeing on the theta bucket.
 */
TEST(SphericalSeams, ThetaPolesAreDeterministic)
{
    const int m = 3;
    RayHasher h({HashFunction::GridSpherical, 5, m, 0.15f}, bounds());
    const Vec3 o{50, 50, 50};
    // Exactly polar: repeatable, in range.
    std::uint32_t up = h.hash(rawRay(o, {0, 0, 1}));
    std::uint32_t down = h.hash(rawRay(o, {0, 0, -1}));
    EXPECT_EQ(up, h.hash(rawRay(o, {0, 0, 1})));
    EXPECT_LT(up, 1u << h.hashBits());
    EXPECT_LT(down, 1u << h.hashBits());
    // theta = 180 clamps just below 180, so -z stays in range and in
    // the top theta bucket rather than overflowing it.
    EXPECT_NE(up, down);

    // Near-polar pair with opposite azimuths: theta buckets agree
    // (both ~0), so any divergence lives in the phi field alone.
    float e = 0.5f * 3.14159265f / 180.0f;
    std::uint32_t a = h.hash(rawRay(o, {std::sin(e), 0, std::cos(e)}));
    std::uint32_t b =
        h.hash(rawRay(o, {-std::sin(e), 0, std::cos(e)}));
    std::uint32_t phi_field_mask = (1u << (m + 1)) - 1;
    EXPECT_EQ((a ^ b) & ~phi_field_mask, 0u);
}

} // namespace
} // namespace rtp
