/** @file Image container / PNM writer tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/image.hpp"

namespace rtp {
namespace {

TEST(Image, DimensionsAndChannels)
{
    Image g(4, 3);
    EXPECT_EQ(g.width(), 4);
    EXPECT_EQ(g.height(), 3);
    EXPECT_EQ(g.channels(), 1);
    Image c(4, 3, 3);
    EXPECT_EQ(c.channels(), 3);
    Image weird(2, 2, 7); // clamps to grayscale
    EXPECT_EQ(weird.channels(), 1);
}

TEST(Image, SetAndGetPixel)
{
    Image img(4, 4);
    img.setPixel(1, 2, 0.5f);
    EXPECT_NEAR(img.pixel(1, 2), 128, 1);
    EXPECT_EQ(img.pixel(0, 0), 0);
}

TEST(Image, ClampsValues)
{
    Image img(2, 2);
    img.setPixel(0, 0, -1.0f);
    img.setPixel(1, 0, 2.0f);
    EXPECT_EQ(img.pixel(0, 0), 0);
    EXPECT_EQ(img.pixel(1, 0), 255);
}

TEST(Image, OutOfBoundsIgnored)
{
    Image img(2, 2);
    img.setPixel(-1, 0, 1.0f);
    img.setPixel(0, 5, 1.0f);
    EXPECT_NEAR(img.mean(), 0.0, 1e-9);
}

TEST(Image, RgbPixels)
{
    Image img(2, 2, 3);
    img.setPixel(0, 0, 1.0f, 0.0f, 0.0f);
    EXPECT_EQ(img.pixel(0, 0, 0), 255);
    EXPECT_EQ(img.pixel(0, 0, 1), 0);
}

TEST(Image, RgbOnGrayscaleUsesLuma)
{
    Image img(1, 1, 1);
    img.setPixel(0, 0, 0.0f, 1.0f, 0.0f);
    EXPECT_NEAR(img.pixel(0, 0), 0.7152 * 255, 2);
}

TEST(Image, WritePgmRoundTripHeader)
{
    Image img(3, 2);
    img.setPixel(0, 0, 1.0f);
    std::string path = "/tmp/rtp_test_image.pgm";
    ASSERT_TRUE(img.writePnm(path));
    std::ifstream f(path, std::ios::binary);
    std::string magic;
    int w, h, maxv;
    f >> magic >> w >> h >> maxv;
    EXPECT_EQ(magic, "P5");
    EXPECT_EQ(w, 3);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxv, 255);
    f.get(); // whitespace
    EXPECT_EQ(f.get(), 255);
    std::remove(path.c_str());
}

TEST(Image, WritePpmForRgb)
{
    Image img(2, 2, 3);
    std::string path = "/tmp/rtp_test_image.ppm";
    ASSERT_TRUE(img.writePnm(path));
    std::ifstream f(path, std::ios::binary);
    std::string magic;
    f >> magic;
    EXPECT_EQ(magic, "P6");
    std::remove(path.c_str());
}

TEST(Image, MeanComputation)
{
    Image img(2, 1);
    img.setPixel(0, 0, 0.0f);
    img.setPixel(1, 0, 1.0f);
    EXPECT_NEAR(img.mean(), 0.5, 0.01);
}

} // namespace
} // namespace rtp
