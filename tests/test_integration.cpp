/** @file End-to-end integration tests: the paper's headline behaviours. */

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "exp/harness.hpp"

namespace rtp {
namespace {

WorkloadCache &
cache()
{
    // Match the bench default scale: the predictor's gains depend on
    // ray-population locality, so the integration thresholds are
    // asserted at the same workload the benches report.
    static WorkloadCache c(WorkloadConfig::fromEnvironment());
    return c;
}

TEST(Integration, PredictorSpeedsUpAoWorkload)
{
    // Figure 12's headline: the proposed predictor (with repacking)
    // beats the baseline RT unit on unsorted AO rays.
    const Workload &w = cache().get(SceneId::Sibenik);
    RunOutcome out =
        runPair(w, SimConfig::baseline(), SimConfig::proposed());
    EXPECT_GT(out.speedup(), 1.05) << "predictor should win clearly";
}

TEST(Integration, PredictorReducesMemoryFetches)
{
    // Figure 13: net per-ray fetch reduction despite mispredictions.
    const Workload &w = cache().get(SceneId::CrytekSponza);
    RunOutcome out =
        runPair(w, SimConfig::baseline(), SimConfig::proposed());
    EXPECT_LT(out.memAccessDelta(), -0.02);
}

TEST(Integration, SortedRaysBenefitLess)
{
    const Workload &w = cache().get(SceneId::Sibenik);
    RunOutcome unsorted =
        runPair(w, SimConfig::baseline(), SimConfig::proposed(), false);
    RunOutcome sorted =
        runPair(w, SimConfig::baseline(), SimConfig::proposed(), true);
    EXPECT_LT(sorted.speedup(), unsorted.speedup() * 1.02)
        << "sorting pre-extracts the coherence the predictor exploits";
}

TEST(Integration, RepackingRecoversMispredictionTail)
{
    // Figure 15: repacking must improve on the predictor without it.
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    SimConfig no_repack = SimConfig::proposed();
    no_repack.rt.repackEnabled = false;
    SimConfig repack = SimConfig::proposed();
    SimResult base = runOne(w, SimConfig::baseline());
    SimResult def = runOne(w, no_repack);
    SimResult rep = runOne(w, repack);
    double def_speedup = static_cast<double>(base.cycles) / def.cycles;
    double rep_speedup = static_cast<double>(base.cycles) / rep.cycles;
    EXPECT_GT(rep_speedup, def_speedup);
}

TEST(Integration, Equation1EstimateTracksMeasurement)
{
    // Table 5: nodes-skipped estimate v*n - p*k*m should be within a
    // factor of ~2 of the measured fetch reduction.
    const Workload &w = cache().get(SceneId::Sibenik);
    RunOutcome out =
        runPair(w, SimConfig::baseline(), SimConfig::proposed());
    double rays = static_cast<double>(
        out.treatment.stats.get("rays_completed"));
    double n = static_cast<double>(out.baseline.totalMemAccesses()) /
               rays;
    double p = out.treatment.predictedRate();
    double v = out.treatment.verifiedRate();
    double predicted_rays = static_cast<double>(
        out.treatment.stats.get("rays_predicted"));
    double km = predicted_rays == 0
                    ? 0
                    : static_cast<double>(out.treatment.stats.get(
                          "ray_pred_phase_fetches")) /
                          predicted_rays;
    double estimated = v * n - p * km;
    double actual =
        n - static_cast<double>(out.treatment.totalMemAccesses()) / rays;
    EXPECT_GT(estimated, 0.0);
    EXPECT_GT(actual, 0.0);
    EXPECT_NEAR(estimated, actual, std::max(estimated, actual));
}

TEST(Integration, EnergyDropsWithPredictor)
{
    // Table 4: overall energy per ray decreases; the predictor table
    // itself adds only a tiny amount.
    const Workload &w = cache().get(SceneId::Sibenik);
    RunOutcome out =
        runPair(w, SimConfig::baseline(), SimConfig::proposed());
    EnergyBreakdown base = computeEnergy(out.baseline, 2);
    EnergyBreakdown pred = computeEnergy(out.treatment, 2);
    EXPECT_LT(pred.total(), base.total());
    EXPECT_LT(pred.predictorTable, 0.05 * pred.total());
    EXPECT_EQ(base.predictorTable, 0.0);
}

TEST(Integration, GoUpLevelRaisesVerifiedRate)
{
    // Figure 14's monotone trend between Go Up 0 and 4.
    const Workload &w = cache().get(SceneId::Sibenik);
    SimConfig lo = SimConfig::proposed();
    lo.predictor.goUpLevel = 0;
    SimConfig hi = SimConfig::proposed();
    hi.predictor.goUpLevel = 4;
    SimResult rlo = runOne(w, lo);
    SimResult rhi = runOne(w, hi);
    EXPECT_GT(rhi.verifiedRate(), rlo.verifiedRate());
}

TEST(Integration, MoreSmsReduceSavings)
{
    // Section 6.2.5: per-SM predictor tables see fewer rays as SM count
    // grows, reducing the predictor's fetch savings.
    const Workload &w = cache().get(SceneId::Sibenik);
    auto savings = [&](std::uint32_t sms) {
        SimConfig base = SimConfig::baseline();
        base.numSms = sms;
        SimConfig pred = SimConfig::proposed();
        pred.numSms = sms;
        SimResult b = runOne(w, base);
        SimResult p = runOne(w, pred);
        return 1.0 - static_cast<double>(p.totalMemAccesses()) /
                         b.totalMemAccesses();
    };
    double s2 = savings(2);
    double s8 = savings(8);
    EXPECT_GT(s2, 0.0);
    EXPECT_GE(s2, s8 * 0.95);
}

TEST(Integration, GiPredictionTrimsWithoutChangingResults)
{
    // Section 6.4: closest-hit GI rays still produce correct results
    // with the predictor (tMax trimming is semantically transparent).
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    RayGenConfig rg = cache().config().raygen;
    rg.width = 24;
    rg.height = 24;
    RayBatch gi = generateGiRays(w.scene, w.bvh, rg);
    SimResult base = simulate(w.bvh, w.scene.mesh.triangles(), gi.rays,
                              SimConfig::baseline());
    SimResult pred = simulate(w.bvh, w.scene.mesh.triangles(), gi.rays,
                              SimConfig::proposed());
    ASSERT_EQ(base.rayResults.size(), pred.rayResults.size());
    for (std::size_t i = 0; i < base.rayResults.size(); ++i) {
        EXPECT_EQ(base.rayResults[i].hit, pred.rayResults[i].hit);
        if (base.rayResults[i].hit) {
            EXPECT_NEAR(base.rayResults[i].t, pred.rayResults[i].t,
                        1e-3f);
        }
    }
}

} // namespace
} // namespace rtp
