/** @file Ray-box and ray-triangle intersection tests. */

#include <gtest/gtest.h>

#include "geometry/intersect.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

Ray
makeRay(Vec3 o, Vec3 d, float tmax = 1e30f)
{
    Ray r;
    r.origin = o;
    r.dir = d;
    r.tMax = tmax;
    return r;
}

TEST(RayBox, StraightHit)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({-5, 0, 0}, {1, 0, 0}), box, t));
    EXPECT_NEAR(t, 4.0f, 1e-5f);
}

TEST(RayBox, Miss)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_FALSE(
        intersectRayAabb(makeRay({-5, 3, 0}, {1, 0, 0}), box, t));
    EXPECT_FALSE(
        intersectRayAabb(makeRay({-5, 0, 0}, {-1, 0, 0}), box, t));
}

TEST(RayBox, OriginInsideBox)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}), box, t));
    // Entry is clamped to tMin when the origin is inside.
    EXPECT_NEAR(t, 1e-4f, 1e-5f);
}

TEST(RayBox, TMaxCulls)
{
    Aabb box{{10, -1, -1}, {12, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}, 20.0f),
                                 box, t));
    EXPECT_FALSE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}, 5.0f),
                                  box, t));
}

TEST(RayBox, AxisParallelRays)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    // Direction has a zero component; IEEE inf semantics must handle it.
    EXPECT_TRUE(intersectRayAabb(makeRay({0, -5, 0}, {0, 1, 0}), box, t));
    EXPECT_FALSE(
        intersectRayAabb(makeRay({3, -5, 0}, {0, 1, 0}), box, t));
}

TEST(RayBox, DiagonalRay)
{
    Aabb box{{1, 1, 1}, {2, 2, 2}};
    float t;
    EXPECT_TRUE(
        intersectRayAabb(makeRay({0, 0, 0}, {1, 1, 1}), box, t));
    EXPECT_NEAR(t, 1.0f, 1e-5f); // parametric, direction unnormalised
}

TEST(RayTriangle, FrontAndBackHit)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_TRUE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec));
    EXPECT_NEAR(rec.t, 5.0f, 1e-4f);
    // From the other side (no backface culling for occlusion rays).
    HitRecord rec2;
    EXPECT_TRUE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 10}, {0, 0, -1}), tri, rec2));
    EXPECT_NEAR(rec2.t, 5.0f, 1e-4f);
}

TEST(RayTriangle, MissOutsideEdges)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({1.5f, 1.5f, 0}, {0, 0, 1}), tri, rec)); // u+v > 1
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({-0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec)); // u < 0
}

TEST(RayTriangle, ParallelRayMisses)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {1, 0, 0}), tri, rec));
}

TEST(RayTriangle, BehindOriginMisses)
{
    Triangle tri{{0, 0, -5}, {2, 0, -5}, {0, 2, -5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec));
}

TEST(RayTriangle, TMaxCulls)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}, 4.0f), tri, rec));
}

TEST(RayTriangle, BarycentricsConsistentProperty)
{
    // Sample random points inside random triangles; the reported (u, v)
    // must reconstruct the sample point.
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
        Triangle tri{{rng.nextRange(-3, 3), rng.nextRange(-3, 3), 5.0f},
                     {rng.nextRange(-3, 3), rng.nextRange(-3, 3), 5.5f},
                     {rng.nextRange(-3, 3), rng.nextRange(-3, 3), 6.0f}};
        if (tri.area() < 1e-3f)
            continue;
        float u = rng.nextFloat(), v = rng.nextFloat();
        if (u + v > 1.0f) {
            u = 1.0f - u;
            v = 1.0f - v;
        }
        Vec3 p = tri.v0 + (tri.v1 - tri.v0) * u + (tri.v2 - tri.v0) * v;
        Ray ray = makeRay(p - Vec3{0, 0, 10}, {0, 0, 1});
        HitRecord rec;
        ASSERT_TRUE(intersectRayTriangle(ray, tri, rec));
        EXPECT_NEAR(rec.u, u, 1e-3f);
        EXPECT_NEAR(rec.v, v, 1e-3f);
        Vec3 hit = ray.at(rec.t);
        EXPECT_NEAR(hit.x, p.x, 1e-3f);
        EXPECT_NEAR(hit.y, p.y, 1e-3f);
    }
}

/**
 * Property: a ray that hits a triangle must also hit the triangle's
 * bounding box (conservativeness of the box test, which BVH pruning
 * relies on).
 */
TEST(Intersect, BoxTestIsConservativeProperty)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 1000; ++i) {
        Triangle tri{{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)},
                     {rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)},
                     {rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)}};
        Ray ray = makeRay({rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10), -20.0f},
                          {rng.nextRange(-0.5f, 0.5f),
                           rng.nextRange(-0.5f, 0.5f), 1.0f});
        HitRecord rec;
        if (intersectRayTriangle(ray, tri, rec)) {
            hits++;
            float t;
            EXPECT_TRUE(intersectRayAabb(ray, tri.bounds(), t));
        }
    }
    EXPECT_GT(hits, 10); // the sample must actually exercise hits
}

TEST(RayBoxPrecompTest, MatchesUncachedOverload)
{
    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
        Aabb box;
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});
        Ray ray = makeRay({rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10)},
                          {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                           rng.nextRange(-1, 1)});
        if (length(ray.dir) < 1e-3f)
            continue;
        RayBoxPrecomp pre(ray);
        float t1 = 0, t2 = 0;
        bool h1 = intersectRayAabb(ray, pre, box, t1);
        bool h2 = intersectRayAabb(ray, box, t2);
        EXPECT_EQ(h1, h2);
        if (h1) {
            EXPECT_FLOAT_EQ(t1, t2);
        }
    }
}

} // namespace
} // namespace rtp
