/** @file Ray-box and ray-triangle intersection tests. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "geometry/intersect.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

Ray
makeRay(Vec3 o, Vec3 d, float tmax = 1e30f)
{
    Ray r;
    r.origin = o;
    r.dir = d;
    r.tMax = tmax;
    return r;
}

TEST(RayBox, StraightHit)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({-5, 0, 0}, {1, 0, 0}), box, t));
    EXPECT_NEAR(t, 4.0f, 1e-5f);
}

TEST(RayBox, Miss)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_FALSE(
        intersectRayAabb(makeRay({-5, 3, 0}, {1, 0, 0}), box, t));
    EXPECT_FALSE(
        intersectRayAabb(makeRay({-5, 0, 0}, {-1, 0, 0}), box, t));
}

TEST(RayBox, OriginInsideBox)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}), box, t));
    // Entry is clamped to tMin when the origin is inside.
    EXPECT_NEAR(t, 1e-4f, 1e-5f);
}

TEST(RayBox, TMaxCulls)
{
    Aabb box{{10, -1, -1}, {12, 1, 1}};
    float t;
    EXPECT_TRUE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}, 20.0f),
                                 box, t));
    EXPECT_FALSE(intersectRayAabb(makeRay({0, 0, 0}, {1, 0, 0}, 5.0f),
                                  box, t));
}

TEST(RayBox, AxisParallelRays)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    // Direction has a zero component; IEEE inf semantics must handle it.
    EXPECT_TRUE(intersectRayAabb(makeRay({0, -5, 0}, {0, 1, 0}), box, t));
    EXPECT_FALSE(
        intersectRayAabb(makeRay({3, -5, 0}, {0, 1, 0}), box, t));
}

TEST(RayBox, DiagonalRay)
{
    Aabb box{{1, 1, 1}, {2, 2, 2}};
    float t;
    EXPECT_TRUE(
        intersectRayAabb(makeRay({0, 0, 0}, {1, 1, 1}), box, t));
    EXPECT_NEAR(t, 1.0f, 1e-5f); // parametric, direction unnormalised
}

TEST(RayTriangle, FrontAndBackHit)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_TRUE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec));
    EXPECT_NEAR(rec.t, 5.0f, 1e-4f);
    // From the other side (no backface culling for occlusion rays).
    HitRecord rec2;
    EXPECT_TRUE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 10}, {0, 0, -1}), tri, rec2));
    EXPECT_NEAR(rec2.t, 5.0f, 1e-4f);
}

TEST(RayTriangle, MissOutsideEdges)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({1.5f, 1.5f, 0}, {0, 0, 1}), tri, rec)); // u+v > 1
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({-0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec)); // u < 0
}

TEST(RayTriangle, ParallelRayMisses)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {1, 0, 0}), tri, rec));
}

TEST(RayTriangle, BehindOriginMisses)
{
    Triangle tri{{0, 0, -5}, {2, 0, -5}, {0, 2, -5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}), tri, rec));
}

TEST(RayTriangle, TMaxCulls)
{
    Triangle tri{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
    HitRecord rec;
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({0.5f, 0.5f, 0}, {0, 0, 1}, 4.0f), tri, rec));
}

TEST(RayTriangle, BarycentricsConsistentProperty)
{
    // Sample random points inside random triangles; the reported (u, v)
    // must reconstruct the sample point.
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
        Triangle tri{{rng.nextRange(-3, 3), rng.nextRange(-3, 3), 5.0f},
                     {rng.nextRange(-3, 3), rng.nextRange(-3, 3), 5.5f},
                     {rng.nextRange(-3, 3), rng.nextRange(-3, 3), 6.0f}};
        if (tri.area() < 1e-3f)
            continue;
        float u = rng.nextFloat(), v = rng.nextFloat();
        if (u + v > 1.0f) {
            u = 1.0f - u;
            v = 1.0f - v;
        }
        Vec3 p = tri.v0 + (tri.v1 - tri.v0) * u + (tri.v2 - tri.v0) * v;
        Ray ray = makeRay(p - Vec3{0, 0, 10}, {0, 0, 1});
        HitRecord rec;
        ASSERT_TRUE(intersectRayTriangle(ray, tri, rec));
        EXPECT_NEAR(rec.u, u, 1e-3f);
        EXPECT_NEAR(rec.v, v, 1e-3f);
        Vec3 hit = ray.at(rec.t);
        EXPECT_NEAR(hit.x, p.x, 1e-3f);
        EXPECT_NEAR(hit.y, p.y, 1e-3f);
    }
}

/**
 * Property: a ray that hits a triangle must also hit the triangle's
 * bounding box (conservativeness of the box test, which BVH pruning
 * relies on).
 */
TEST(Intersect, BoxTestIsConservativeProperty)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 1000; ++i) {
        Triangle tri{{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)},
                     {rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)},
                     {rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                      rng.nextRange(-5, 5)}};
        Ray ray = makeRay({rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10), -20.0f},
                          {rng.nextRange(-0.5f, 0.5f),
                           rng.nextRange(-0.5f, 0.5f), 1.0f});
        HitRecord rec;
        if (intersectRayTriangle(ray, tri, rec)) {
            hits++;
            float t;
            EXPECT_TRUE(intersectRayAabb(ray, tri.bounds(), t));
        }
    }
    EXPECT_GT(hits, 10); // the sample must actually exercise hits
}

// --- Robust-slab regression suite: the historical NaN failure was an
// --- origin exactly on a slab plane with an axis-parallel direction
// --- (0 * inf = NaN), so these pin the safeInv formulation.

TEST(RayBox, OriginOnSlabPlaneAxisParallel)
{
    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    // Origin exactly on the x = -1 plane, direction parallel to that
    // plane: (lo.x - o.x) * invDir.x used to be 0 * inf = NaN.
    EXPECT_TRUE(intersectRayAabb(
        makeRay({-1.0f, -5.0f, 0.0f}, {0, 1, 0}), box, t));
    EXPECT_TRUE(std::isfinite(t));
    // Same configuration but sliding along the plane outside the box.
    EXPECT_FALSE(intersectRayAabb(
        makeRay({-1.0f, -5.0f, 3.0f}, {0, 1, 0}), box, t));
    // Origin on the hi plane, negative-parallel direction: safeInv's
    // positive-canonicalised reciprocal makes containment along a
    // zero-direction axis half-open, [lo, hi) — a deterministic
    // tie-break (like the rasteriser top-left rule) so a point on the
    // plane shared by two adjacent boxes counts in exactly one of
    // them. On the hi plane that is a miss, and never a NaN.
    EXPECT_FALSE(intersectRayAabb(
        makeRay({1.0f, 5.0f, 0.0f}, {0, -1, 0}), box, t));
    // Aimed into the box from the hi plane it is an ordinary hit.
    EXPECT_TRUE(intersectRayAabb(
        makeRay({1.0f, 0.0f, 0.0f}, {-1.0f, 0.0f, 0.0f}), box, t));
    EXPECT_TRUE(std::isfinite(t));
}

TEST(RayBox, NegativeZeroDirectionMatchesPositiveZero)
{
    // -0.0f passes d != 0.0f checks in naive formulations and flips
    // the slab roles via 1/-0 = -inf. safeInv canonicalises both zero
    // signs to the same positive reciprocal, so the precompute — and
    // therefore every tEntry, including ties — is bit-identical.
    Ray pos = makeRay({0.5f, -5.0f, 0.25f}, {0.0f, 1.0f, 0.0f});
    Ray neg = makeRay({0.5f, -5.0f, 0.25f}, {-0.0f, 1.0f, -0.0f});
    RayBoxPrecomp ppos(pos), pneg(neg);
    EXPECT_EQ(std::memcmp(&ppos, &pneg, sizeof(ppos)), 0);

    Aabb box{{0, 0, 0}, {1, 1, 1}};
    float tp = 0, tn = 0;
    bool hp = intersectRayAabb(pos, ppos, box, tp);
    bool hn = intersectRayAabb(neg, pneg, box, tn);
    EXPECT_EQ(hp, hn);
    std::uint32_t bp, bn;
    std::memcpy(&bp, &tp, 4);
    std::memcpy(&bn, &tn, 4);
    EXPECT_EQ(bp, bn);
}

TEST(RayBox, DenormalDirectionComponentIsFinite)
{
    // A denormal component is != 0 but 1/d overflows to inf; safeInv
    // clamps to a signed huge value so slab products stay finite.
    float denorm = 1e-42f;
    ASSERT_GT(denorm, 0.0f);
    ASSERT_TRUE(std::isinf(1.0f / denorm));
    EXPECT_TRUE(std::isfinite(RayBoxPrecomp::safeInv(denorm)));
    EXPECT_TRUE(std::isfinite(RayBoxPrecomp::safeInv(-denorm)));
    EXPECT_LT(RayBoxPrecomp::safeInv(-denorm), 0.0f);

    Aabb box{{-1, -1, -1}, {1, 1, 1}};
    float t;
    Ray r = makeRay({0.0f, -5.0f, 0.0f}, {denorm, 1.0f, 0.0f});
    EXPECT_TRUE(intersectRayAabb(r, box, t));
    EXPECT_TRUE(std::isfinite(t));
}

TEST(RayBox, DegenerateFlatBox)
{
    // Zero-extent (flat) AABBs arise from axis-aligned geometry. Under
    // the half-open [lo, hi) zero-direction rule a ray exactly in the
    // plane of a zero-extent sheet misses (the interval is empty) —
    // which is safe, because every triangle inside a flat box is
    // coplanar with such a ray and the Möller–Trumbore determinant
    // cull rejects it anyway. The important property is no NaN: the
    // answer must be a deterministic miss, not operand-order luck.
    Aabb flat{{-1.0f, 0.5f, -1.0f}, {1.0f, 0.5f, 1.0f}};
    float t;
    EXPECT_FALSE(intersectRayAabb(
        makeRay({0.0f, 0.5f, -5.0f}, {0, 0, 1}), flat, t));
    EXPECT_FALSE(intersectRayAabb(
        makeRay({0.0f, 0.75f, -5.0f}, {0, 0, 1}), flat, t));
    // Perpendicular crossing through the sheet.
    EXPECT_TRUE(intersectRayAabb(
        makeRay({0.0f, -5.0f, 0.0f}, {0, 1, 0}), flat, t));
    EXPECT_NEAR(t, 5.5f, 1e-5f);
    // Point box (all extents zero).
    Aabb point{{2, 2, 2}, {2, 2, 2}};
    EXPECT_TRUE(intersectRayAabb(
        makeRay({0, 0, 0}, {1, 1, 1}), point, t));
    EXPECT_NEAR(t, 2.0f, 1e-5f);
}

// --- Determinant-cull regression suite: the fixed epsilon = 1e-9 cull
// --- was scale-dependent (sliver triangles in large-coordinate scenes
// --- passed it; healthy micro-triangles in small scenes were culled).

TEST(RayTriangle, ScaleInvariantHit)
{
    // The same well-conditioned configuration must hit at any uniform
    // scale; a fixed absolute det cull rejected the small end.
    for (float scale : {1e-4f, 1e-2f, 1.0f, 1e2f, 1e4f}) {
        Triangle tri{{0, 0, 5.0f * scale},
                     {2.0f * scale, 0, 5.0f * scale},
                     {0, 2.0f * scale, 5.0f * scale}};
        HitRecord rec;
        EXPECT_TRUE(intersectRayTriangle(
            makeRay({0.5f * scale, 0.5f * scale, 0}, {0, 0, scale}),
            tri, rec))
            << "scale " << scale;
        EXPECT_NEAR(rec.t, 5.0f, 1e-3f) << "scale " << scale;
    }
}

TEST(RayTriangle, FullyDegenerateTriangleCulled)
{
    HitRecord rec;
    // All three vertices identical: det == eps == 0; the <= cull must
    // reject instead of dividing by zero and accepting a NaN t.
    Triangle point{{1, 1, 5}, {1, 1, 5}, {1, 1, 5}};
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({1, 1, 0}, {0, 0, 1}), point, rec));
    // Collinear vertices (zero-area sliver collapsed to a segment).
    Triangle seg{{0, 0, 5}, {1, 0, 5}, {2, 0, 5}};
    EXPECT_FALSE(intersectRayTriangle(
        makeRay({1, 0, 0}, {0, 0, 1}), seg, rec));
}

TEST(RayTriangle, SliverTrianglesMatchOracleProperty)
{
    // Near-degenerate slivers across coordinate scales: whenever the
    // kernel reports a hit, the reconstructed point must lie on the
    // triangle plane (no garbage from an ill-conditioned 1/det), and
    // clear geometric hits must not be lost to the cull.
    Rng rng(41);
    int hits = 0;
    for (int i = 0; i < 2000; ++i) {
        float scale = std::pow(10.0f, rng.nextRange(-3.0f, 3.0f));
        float sliver = std::pow(10.0f, rng.nextRange(-6.0f, -1.0f));
        // Long thin triangle: base along x, apex barely off-axis.
        Triangle tri{{-scale, 0, 5 * scale},
                     {scale, 0, 5 * scale},
                     {rng.nextRange(-0.5f, 0.5f) * scale,
                      sliver * scale, 5 * scale}};
        Ray ray = makeRay({rng.nextRange(-1.0f, 1.0f) * scale,
                           sliver * scale * 0.25f, 0},
                          {0, 0, scale});
        HitRecord rec;
        if (intersectRayTriangle(ray, tri, rec)) {
            hits++;
            ASSERT_TRUE(std::isfinite(rec.t));
            Vec3 p = ray.at(rec.t);
            EXPECT_NEAR(p.z / scale, 5.0f, 1e-2f);
            EXPECT_GE(rec.u, 0.0f);
            EXPECT_LE(rec.u + rec.v, 1.0f);
        }
    }
    EXPECT_GT(hits, 50); // the sample must actually exercise hits
}

TEST(RayBoxPrecompTest, MatchesUncachedOverload)
{
    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
        Aabb box;
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});
        Ray ray = makeRay({rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10),
                           rng.nextRange(-10, 10)},
                          {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                           rng.nextRange(-1, 1)});
        if (length(ray.dir) < 1e-3f)
            continue;
        RayBoxPrecomp pre(ray);
        float t1 = 0, t2 = 0;
        bool h1 = intersectRayAabb(ray, pre, box, t1);
        bool h2 = intersectRayAabb(ray, box, t2);
        EXPECT_EQ(h1, h2);
        if (h1) {
            EXPECT_FLOAT_EQ(t1, t2);
        }
    }
}

} // namespace
} // namespace rtp
