/** @file Intersection unit latency model tests. */

#include <gtest/gtest.h>

#include "rtunit/intersection_unit.hpp"

namespace rtp {
namespace {

TEST(IntersectionUnit, BoxPairLatency)
{
    IntersectionUnit u({2, 2});
    EXPECT_EQ(u.boxPairLatency(), 3u); // pipeline depth + 1
    EXPECT_EQ(u.stats().get("box_tests"), 2u);
}

TEST(IntersectionUnit, LeafLatencyPipelines)
{
    IntersectionUnit u({2, 2});
    EXPECT_EQ(u.leafLatency(1), 2u);
    EXPECT_EQ(u.leafLatency(4), 5u); // depth 2 + 3 extra prims
    EXPECT_EQ(u.stats().get("tri_tests"), 5u);
}

TEST(IntersectionUnit, ConfigurableDepth)
{
    IntersectionUnit u({6, 10});
    EXPECT_EQ(u.boxPairLatency(), 7u);
    EXPECT_EQ(u.leafLatency(2), 11u);
}

TEST(IntersectionUnit, ZeroPrimLeaf)
{
    IntersectionUnit u({2, 2});
    EXPECT_EQ(u.leafLatency(0), 2u);
    EXPECT_EQ(u.stats().get("tri_tests"), 0u);
}

TEST(IntersectionUnit, ClearStats)
{
    IntersectionUnit u;
    u.boxPairLatency();
    u.clearStats();
    EXPECT_EQ(u.stats().get("box_tests"), 0u);
}

} // namespace
} // namespace rtp
