/**
 * @file
 * Scalar vs SoA intersection-kernel equivalence tests
 * (geometry/intersect_soa.hpp): RTP_KERNEL=soa must be byte-identical
 * to the scalar kernels in every observable output — per-lane kernel
 * results, BvhTraversal hit records, SimResult JSON, Chrome-trace
 * bytes, and telemetry timelines — on every bundled scene. The SoA
 * path is a host-throughput optimisation only; a single differing bit
 * anywhere is a bug.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bvh/traversal.hpp"
#include "exp/workload.hpp"
#include "geometry/intersect.hpp"
#include "geometry/intersect_soa.hpp"
#include "gpu/simulator.hpp"
#include "rays/ray_soa.hpp"
#include "scene/registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace rtp {
namespace {

/** Small shared workload set: every bundled scene at low detail. */
WorkloadCache &
cache()
{
    static WorkloadCache *c = [] {
        WorkloadConfig wc;
        wc.detail = 0.05f;
        wc.raygen.width = 24;
        wc.raygen.height = 24;
        wc.raygen.samplesPerPixel = 1;
        wc.raygen.viewportFraction = 0.3f;
        return new WorkloadCache(wc);
    }();
    return *c;
}

std::uint32_t
bits(float f)
{
    std::uint32_t b;
    std::memcpy(&b, &f, 4);
    return b;
}

/** Exact comparison of two hit records, including t/u/v bit patterns. */
void
expectBitIdentical(const HitRecord &a, const HitRecord &b,
                   const char *what, std::size_t i)
{
    ASSERT_EQ(a.hit, b.hit) << what << " ray " << i;
    if (!a.hit)
        return;
    EXPECT_EQ(a.prim, b.prim) << what << " ray " << i;
    EXPECT_EQ(bits(a.t), bits(b.t)) << what << " ray " << i;
    EXPECT_EQ(bits(a.u), bits(b.u)) << what << " ray " << i;
    EXPECT_EQ(bits(a.v), bits(b.v)) << what << " ray " << i;
}

std::string
runPlain(const Workload &w, SimConfig config, KernelKind kernel)
{
    config.rt.kernel = kernel;
    return Simulation(config, w.bvh, w.scene.mesh.triangles())
        .run(w.ao.rays)
        .toJson();
}

// ---------------------------------------------------------------------
// Kernel level: batched lanes vs per-call scalar kernels, bit for bit.
// ---------------------------------------------------------------------

TEST(KernelEquiv, BoxLanesMatchScalarBitwiseProperty)
{
    Rng rng(23);
    for (int iter = 0; iter < 200; ++iter) {
        Aabb box;
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});
        box.extend(Vec3{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
                        rng.nextRange(-5, 5)});

        std::vector<Ray> rays;
        for (std::uint32_t i = 0; i < 13; ++i) {
            Ray r;
            r.origin = {rng.nextRange(-10, 10), rng.nextRange(-10, 10),
                        rng.nextRange(-10, 10)};
            r.dir = {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                     rng.nextRange(-1, 1)};
            // Mix in the historical failure modes: axis-parallel
            // directions (zero components, both signs) and origins on
            // slab planes.
            if (i % 4 == 0)
                r.dir.x = (i % 8 == 0) ? 0.0f : -0.0f;
            if (i % 5 == 0)
                r.origin.x = box.lo.x;
            r.tMax = rng.nextRange(1.0f, 40.0f);
            rays.push_back(r);
        }

        RayBatchSoA batch = RayBatchSoA::fromRays(rays);
        std::vector<std::uint32_t> slots;
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(rays.size()); ++i)
            slots.push_back(i);
        RayLanes lanes;
        batch.gather(slots.data(),
                     static_cast<std::uint32_t>(slots.size()), lanes);

        float t_soa[RayLanes::kMax];
        std::uint8_t hit_soa[RayLanes::kMax];
        intersectRayAabbSoa(lanes,
                            static_cast<std::uint32_t>(rays.size()),
                            box, t_soa, hit_soa);

        for (std::size_t i = 0; i < rays.size(); ++i) {
            RayBoxPrecomp pre(rays[i]);
            float t_scalar = 0;
            bool hit_scalar =
                intersectRayAabb(rays[i], pre, box, t_scalar);
            ASSERT_EQ(hit_scalar, hit_soa[i] != 0)
                << "iter " << iter << " lane " << i;
            if (hit_scalar)
                EXPECT_EQ(bits(t_scalar), bits(t_soa[i]))
                    << "iter " << iter << " lane " << i;
        }
    }
}

TEST(KernelEquiv, TriangleLanesMatchScalarBitwiseProperty)
{
    Rng rng(29);
    std::vector<Triangle> tris;
    for (int i = 0; i < 64; ++i) {
        float scale = std::pow(10.0f, rng.nextRange(-2.0f, 2.0f));
        tris.push_back(Triangle{
            {rng.nextRange(-3, 3) * scale, rng.nextRange(-3, 3) * scale,
             rng.nextRange(2, 8) * scale},
            {rng.nextRange(-3, 3) * scale, rng.nextRange(-3, 3) * scale,
             rng.nextRange(2, 8) * scale},
            {rng.nextRange(-3, 3) * scale, rng.nextRange(-3, 3) * scale,
             rng.nextRange(2, 8) * scale}});
    }
    // Identity slot order plus a degenerate lane to exercise the cull.
    tris[7] = Triangle{{1, 1, 5}, {1, 1, 5}, {1, 1, 5}};
    std::vector<std::uint32_t> slot_to_tri;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(tris.size()); ++i)
        slot_to_tri.push_back(i);
    TriangleSoA soa = TriangleSoA::build(tris, slot_to_tri);

    TriLaneHits out;
    for (int iter = 0; iter < 100; ++iter) {
        Ray ray;
        ray.origin = {rng.nextRange(-2, 2), rng.nextRange(-2, 2),
                      rng.nextRange(-30, 0)};
        ray.dir = {rng.nextRange(-0.3f, 0.3f),
                   rng.nextRange(-0.3f, 0.3f), 1.0f};
        ray.tMax = 1e30f;

        out.resize(tris.size());
        intersectRayTriangleSoa(
            ray.origin, ray.dir, soa, 0,
            static_cast<std::uint32_t>(tris.size()), out);

        for (std::size_t i = 0; i < tris.size(); ++i) {
            HitRecord h;
            bool hit_scalar = intersectRayTriangle(ray, tris[i], h);
            bool hit_soa =
                out.pass[i] != 0 && out.t[i] > ray.tMin &&
                out.t[i] < ray.tMax;
            ASSERT_EQ(hit_scalar, hit_soa)
                << "iter " << iter << " lane " << i;
            if (hit_scalar) {
                EXPECT_EQ(bits(h.t), bits(out.t[i])) << "lane " << i;
                EXPECT_EQ(bits(h.u), bits(out.u[i])) << "lane " << i;
                EXPECT_EQ(bits(h.v), bits(out.v[i])) << "lane " << i;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Traversal level: BvhTraversal in both kernel modes vs the free-
// function reference, on every bundled scene.
// ---------------------------------------------------------------------

TEST(KernelEquiv, TraversalBitIdenticalOnEveryScene)
{
    for (SceneId id : allSceneIds()) {
        const Workload &w = cache().get(id);
        const auto &tris = w.scene.mesh.triangles();
        BvhTraversal scalar_ctx(w.bvh, tris, KernelKind::Scalar);
        BvhTraversal soa_ctx(w.bvh, tris, KernelKind::Soa);

        for (std::size_t i = 0; i < w.ao.rays.size(); ++i) {
            const Ray &ray = w.ao.rays[i];
            HitRecord ref = traverseClosestHit(w.bvh, tris, ray);
            HitRecord a = scalar_ctx.closestHit(ray);
            HitRecord b = soa_ctx.closestHit(ray);
            expectBitIdentical(ref, a, w.scene.shortName.c_str(), i);
            expectBitIdentical(a, b, w.scene.shortName.c_str(), i);

            HitRecord ref_any = traverseAnyHit(w.bvh, tris, ray);
            HitRecord a_any = scalar_ctx.anyHit(ray);
            HitRecord b_any = soa_ctx.anyHit(ray);
            expectBitIdentical(ref_any, a_any,
                               w.scene.shortName.c_str(), i);
            expectBitIdentical(a_any, b_any,
                               w.scene.shortName.c_str(), i);
        }
    }
}

TEST(KernelEquiv, TraversalBatchMatchesPerRayCalls)
{
    const Workload &w = cache().get(SceneId::Sibenik);
    const auto &tris = w.scene.mesh.triangles();
    BvhTraversal ctx(w.bvh, tris, KernelKind::Soa);

    std::vector<HitRecord> batch;
    ctx.closestHitBatch(w.ao.rays, batch);
    ASSERT_EQ(batch.size(), w.ao.rays.size());
    std::vector<std::uint8_t> any;
    ctx.anyHitBatch(w.ao.rays, any);
    ASSERT_EQ(any.size(), w.ao.rays.size());

    for (std::size_t i = 0; i < w.ao.rays.size(); ++i) {
        HitRecord one = ctx.closestHit(w.ao.rays[i]);
        expectBitIdentical(one, batch[i], "batch", i);
        EXPECT_EQ(ctx.anyHit(w.ao.rays[i]).hit, any[i] != 0)
            << "ray " << i;
    }
}

// ---------------------------------------------------------------------
// Simulation level: the cycle model's byte-identity contract.
// ---------------------------------------------------------------------

TEST(KernelEquiv, EverySceneSimResultByteIdentical)
{
    SimConfig config = SimConfig::proposed();
    for (SceneId id : allSceneIds()) {
        const Workload &w = cache().get(id);
        EXPECT_EQ(runPlain(w, config, KernelKind::Scalar),
                  runPlain(w, config, KernelKind::Soa))
            << w.scene.shortName;
    }
}

TEST(KernelEquiv, BaselineConfigByteIdentical)
{
    // Predictor-off baseline exercises plain root-down traversal (no
    // PredEval phase, no repacking) through the same kernel seam.
    SimConfig config = SimConfig::baseline();
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    EXPECT_EQ(runPlain(w, config, KernelKind::Scalar),
              runPlain(w, config, KernelKind::Soa));
}

TEST(KernelEquiv, ObserversByteIdenticalAcrossKernels)
{
    // Trace, telemetry, and the invariant checker attached: every
    // observer's bytes and the probe count must match across kernels.
    const Workload &w = cache().get(SceneId::CrytekSponza);
    struct Out
    {
        std::string result, trace, telemetry;
        std::uint64_t checks = 0;
    };
    auto run = [&](KernelKind kernel) {
        SimConfig config = SimConfig::proposed();
        config.rt.kernel = kernel;
        TraceSink sink(1u << 16);
        TelemetrySampler sampler(128);
        InvariantChecker check;
        config.trace = &sink;
        config.telemetry = &sampler;
        config.check = &check;
        Out out;
        out.result = Simulation(config, w.bvh,
                                w.scene.mesh.triangles())
                         .run(w.ao.rays)
                         .toJson();
        std::ostringstream trace_os;
        sink.writeChromeTrace(trace_os);
        out.trace = trace_os.str();
        std::ostringstream telemetry_os;
        sampler.writeJson(telemetry_os);
        out.telemetry = telemetry_os.str();
        out.checks = check.checksRun();
        return out;
    };
    const Out scalar = run(KernelKind::Scalar);
    const Out soa = run(KernelKind::Soa);
    EXPECT_EQ(scalar.result, soa.result);
    EXPECT_EQ(scalar.trace, soa.trace);
    EXPECT_EQ(scalar.telemetry, soa.telemetry);
    EXPECT_EQ(scalar.checks, soa.checks);
}

TEST(KernelEquiv, KernelNameRoundTrip)
{
    EXPECT_STREQ(kernelName(KernelKind::Scalar), "scalar");
    EXPECT_STREQ(kernelName(KernelKind::Soa), "soa");
    KernelKind k;
    EXPECT_TRUE(parseKernelName("scalar", k));
    EXPECT_EQ(k, KernelKind::Scalar);
    EXPECT_TRUE(parseKernelName("soa", k));
    EXPECT_EQ(k, KernelKind::Soa);
    EXPECT_FALSE(parseKernelName("", k));
    EXPECT_FALSE(parseKernelName("SOA", k));
    EXPECT_FALSE(parseKernelName("avx", k));
}

} // namespace
} // namespace rtp
