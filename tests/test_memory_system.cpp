/** @file Memory hierarchy composition tests. */

#include <gtest/gtest.h>

#include "mem/memory_system.hpp"

namespace rtp {
namespace {

MemoryConfig
fastConfig()
{
    MemoryConfig c;
    c.l1 = {512, 128, 0, 1, "l1"}; // 4 lines
    c.l2 = {2048, 128, 2, 1, "l2"}; // 16 lines
    c.l1ToL2Latency = 10;
    c.l2ToDramLatency = 20;
    c.dram.rowMissLatency = 50;
    c.dram.rowHitLatency = 10;
    return c;
}

TEST(MemorySystem, ColdAccessGoesToDram)
{
    MemorySystem mem(fastConfig(), 1);
    MemAccess a = mem.access(0, 0x1000, 0);
    EXPECT_EQ(a.servedBy, MemLevel::Dram);
    // l1ToL2 10 + l2ToDram 20 + dram 50 + l2 hitlat 1 + l1 hitlat 1.
    EXPECT_GE(a.readyCycle, 80u);
}

TEST(MemorySystem, SecondAccessHitsL1)
{
    MemorySystem mem(fastConfig(), 1);
    mem.access(0, 0x1000, 0);
    MemAccess b = mem.access(0, 0x1000, 500);
    EXPECT_EQ(b.servedBy, MemLevel::L1);
    EXPECT_EQ(b.readyCycle, 501u);
}

TEST(MemorySystem, L1EvictionFallsBackToL2)
{
    MemorySystem mem(fastConfig(), 1);
    mem.access(0, 0 * 128, 0);
    // Fill the 4-line L1 with other lines to evict line 0.
    for (int i = 1; i <= 4; ++i)
        mem.access(0, i * 128, 1000 + i * 100);
    MemAccess b = mem.access(0, 0 * 128, 5000);
    EXPECT_EQ(b.servedBy, MemLevel::L2);
    EXPECT_LT(b.readyCycle, 5000u + 40u); // no DRAM trip
}

TEST(MemorySystem, PerSmL1sAreIndependent)
{
    MemorySystem mem(fastConfig(), 2);
    mem.access(0, 0x1000, 0);
    // SM 1's L1 is cold but L2 is warm.
    MemAccess b = mem.access(1, 0x1000, 500);
    EXPECT_EQ(b.servedBy, MemLevel::L2);
    MemAccess c = mem.access(1, 0x1000, 1000);
    EXPECT_EQ(c.servedBy, MemLevel::L1);
}

TEST(MemorySystem, L2DisabledGoesStraightToDram)
{
    MemoryConfig cfg = fastConfig();
    cfg.l2Enabled = false;
    MemorySystem mem(cfg, 1);
    mem.access(0, 0x1000, 0);
    // Evict from tiny L1...
    for (int i = 1; i <= 4; ++i)
        mem.access(0, 0x1000 + i * 128, 100 * i + 200);
    MemAccess b = mem.access(0, 0x1000, 5000);
    EXPECT_EQ(b.servedBy, MemLevel::Dram);
}

TEST(MemorySystem, AggregateStatsCombineLevels)
{
    MemorySystem mem(fastConfig(), 2);
    mem.access(0, 0, 0);
    // Wait for SM0's L2 fill to complete so SM1's access is a true L2
    // hit rather than an MSHR merge into the in-flight fill.
    mem.access(1, 0, 500);
    mem.access(0, 0, 1000);
    StatGroup g = mem.aggregateStats();
    EXPECT_EQ(g.get("l1.misses"), 2u);
    EXPECT_EQ(g.get("l1.hits"), 1u);
    EXPECT_EQ(g.get("l2.misses"), 1u);
    EXPECT_EQ(g.get("l2.hits"), 1u);
    EXPECT_EQ(g.get("dram.accesses"), 1u);
}

TEST(MemorySystem, ClearStatsKeepsContents)
{
    MemorySystem mem(fastConfig(), 1);
    mem.access(0, 0, 0);
    mem.clearStats();
    EXPECT_EQ(mem.aggregateStats().get("l1.misses"), 0u);
    // Line is still resident.
    MemAccess a = mem.access(0, 0, 100);
    EXPECT_EQ(a.servedBy, MemLevel::L1);
}

} // namespace
} // namespace rtp
