/** @file Mesh construction helper tests. */

#include <gtest/gtest.h>

#include "scene/mesh.hpp"

namespace rtp {
namespace {

TEST(Mesh, AddTriangle)
{
    Mesh m;
    m.addTriangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    EXPECT_EQ(m.size(), 1u);
}

TEST(Mesh, QuadTessellationCount)
{
    Mesh m;
    m.addQuad({0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, 3, 5);
    EXPECT_EQ(m.size(), 2u * 3u * 5u);
}

TEST(Mesh, QuadCoversUnitSquare)
{
    Mesh m;
    m.addQuad({0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, 4, 4);
    Aabb b = m.bounds();
    EXPECT_NEAR(b.lo.x, 0.0f, 1e-6f);
    EXPECT_NEAR(b.hi.x, 1.0f, 1e-6f);
    EXPECT_NEAR(b.hi.y, 1.0f, 1e-6f);
    // Total area of the tessellation equals the quad area.
    float area = 0.0f;
    for (const auto &t : m.triangles())
        area += t.area();
    EXPECT_NEAR(area, 1.0f, 1e-4f);
}

TEST(Mesh, BoxHasSixFaces)
{
    Mesh m;
    m.addBox(Aabb{{0, 0, 0}, {1, 2, 3}}, 2, 3);
    EXPECT_EQ(m.size(), 6u * 2u * 2u * 3u);
    Aabb b = m.bounds();
    EXPECT_NEAR(b.hi.z, 3.0f, 1e-6f);
    float area = 0.0f;
    for (const auto &t : m.triangles())
        area += t.area();
    EXPECT_NEAR(area, 2.0f * (2.0f + 6.0f + 3.0f), 1e-3f);
}

TEST(Mesh, CylinderCounts)
{
    Mesh m;
    m.addCylinder({0, 0, 0}, 1.0f, 2.0f, 8, 3, true);
    // Side: 2*8*3, caps: 2*8 fans.
    EXPECT_EQ(m.size(), 2u * 8u * 3u + 2u * 8u);
    Aabb b = m.bounds();
    EXPECT_NEAR(b.hi.y, 2.0f, 1e-5f);
    EXPECT_NEAR(b.lo.y, 0.0f, 1e-5f);
    EXPECT_NEAR(b.hi.x, 1.0f, 1e-2f);
}

TEST(Mesh, CylinderNoCaps)
{
    Mesh m;
    m.addCylinder({0, 0, 0}, 1.0f, 2.0f, 8, 3, false);
    EXPECT_EQ(m.size(), 2u * 8u * 3u);
}

TEST(Mesh, SphereBoundsAndCount)
{
    Mesh m;
    m.addSphere({1, 2, 3}, 0.5f, 12, 6);
    EXPECT_EQ(m.size(), 2u * 12u * 6u);
    Aabb b = m.bounds();
    EXPECT_NEAR(b.center().x, 1.0f, 0.05f);
    EXPECT_NEAR(b.extent().y, 1.0f, 0.05f);
}

TEST(Mesh, HeightfieldFollowsFunction)
{
    Mesh m;
    m.addHeightfield(0, 0, 2, 2, 1.0f,
                     [](float u, float v) { return u + v; }, 4, 4);
    EXPECT_EQ(m.size(), 2u * 4u * 4u);
    Aabb b = m.bounds();
    EXPECT_NEAR(b.lo.y, 1.0f, 1e-5f);
    EXPECT_NEAR(b.hi.y, 3.0f, 1e-5f);
}

TEST(Mesh, AppendConcatenates)
{
    Mesh a, b;
    a.addTriangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
    b.addBox(Aabb{{0, 0, 0}, {1, 1, 1}});
    a.append(b);
    EXPECT_EQ(a.size(), 1u + 12u);
}

TEST(Mesh, ParametricDegenerateClamped)
{
    Mesh m;
    m.addParametric([](float u, float v) { return Vec3{u, v, 0.0f}; },
                    0, -1);
    EXPECT_EQ(m.size(), 2u); // clamped to 1x1
}

} // namespace
} // namespace rtp
