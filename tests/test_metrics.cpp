/**
 * @file
 * MetricsRegistry / Prometheus exposition tests (util/metrics.hpp):
 * label-value escaping, deterministic family and label ordering,
 * histogram bucket rendering (cumulative with a closing +Inf), the
 * schema-stamped JSON sink, promLint()'s grammar and histogram
 * discipline, and the populateFromProfile / populateFromStats bridges.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/metrics.hpp"
#include "util/profile.hpp"
#include "util/schema.hpp"
#include "util/stats.hpp"

namespace rtp {
namespace {

/** @return true when @p haystack contains @p needle. */
bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(MetricsRegistry, EscapesLabelValuesAndHelp)
{
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("a\\b\"c\nd"),
              "a\\\\b\\\"c\\nd");
    EXPECT_EQ(MetricsRegistry::escapeLabelValue("plain"), "plain");
    EXPECT_EQ(MetricsRegistry::escapeHelp("line\nbreak\\x"),
              "line\\nbreak\\\\x");

    // Escaped values must survive rendering and still lint clean.
    MetricsRegistry reg;
    reg.addCounter("rtp_test_total", "weird labels",
                   {{"path", "a\\b\"c\nd"}}, 1.0);
    const std::string text = reg.renderProm();
    EXPECT_TRUE(contains(text,
                         "rtp_test_total{path=\"a\\\\b\\\"c\\nd\"} 1"))
        << text;
    EXPECT_TRUE(promLint(text).empty()) << text;
}

TEST(MetricsRegistry, LabelAndFamilyOrderingIsDeterministic)
{
    // Same series handed over in different label and family orders must
    // render byte-identically: families sorted by name, labels sorted
    // by label name.
    MetricsRegistry a;
    a.addCounter("rtp_zz_total", "z", {{"zeta", "1"}, {"alpha", "2"}}, 3.0);
    a.addCounter("rtp_aa_total", "a", {}, 1.0);
    MetricsRegistry b;
    b.addCounter("rtp_aa_total", "a", {}, 1.0);
    b.addCounter("rtp_zz_total", "z", {{"alpha", "2"}, {"zeta", "1"}}, 3.0);
    EXPECT_EQ(a.renderProm(), b.renderProm());
    EXPECT_EQ(a.toJson(), b.toJson());

    const std::string text = a.renderProm();
    EXPECT_TRUE(contains(text, "rtp_zz_total{alpha=\"2\",zeta=\"1\"} 3"))
        << text;
    EXPECT_LT(text.find("rtp_aa_total"), text.find("rtp_zz_total"));
}

TEST(MetricsRegistry, CountersAccumulateGaugesOverwrite)
{
    MetricsRegistry reg;
    reg.addCounter("rtp_c_total", "c", {{"k", "v"}}, 2.0);
    reg.addCounter("rtp_c_total", "c", {{"k", "v"}}, 3.0);
    reg.setGauge("rtp_g", "g", {}, 7.0);
    reg.setGauge("rtp_g", "g", {}, 4.0);
    const std::string text = reg.renderProm();
    EXPECT_TRUE(contains(text, "rtp_c_total{k=\"v\"} 5")) << text;
    EXPECT_TRUE(contains(text, "rtp_g 4")) << text;
    EXPECT_TRUE(contains(text, "# TYPE rtp_c_total counter")) << text;
    EXPECT_TRUE(contains(text, "# TYPE rtp_g gauge")) << text;
}

TEST(MetricsRegistry, HistogramRendersCumulativeBucketsWithInf)
{
    MetricsRegistry reg;
    HistogramData &h = reg.histogram("rtp_lat_seconds", "latency",
                                     {{"tenant", "a"}}, {1.0, 4.0});
    h.observe(1.0); // first bucket (le 1)
    h.observe(2.0); // second bucket (le 4)
    h.observe(8.0); // overflow (+Inf)
    const std::string text = reg.renderProm();
    EXPECT_TRUE(contains(text, "# TYPE rtp_lat_seconds histogram")) << text;
    EXPECT_TRUE(contains(
        text, "rtp_lat_seconds_bucket{tenant=\"a\",le=\"1\"} 1"))
        << text;
    EXPECT_TRUE(contains(
        text, "rtp_lat_seconds_bucket{tenant=\"a\",le=\"4\"} 2"))
        << text;
    EXPECT_TRUE(contains(
        text, "rtp_lat_seconds_bucket{tenant=\"a\",le=\"+Inf\"} 3"))
        << text;
    EXPECT_TRUE(contains(text, "rtp_lat_seconds_sum{tenant=\"a\"} 11"))
        << text;
    EXPECT_TRUE(contains(text, "rtp_lat_seconds_count{tenant=\"a\"} 3"))
        << text;
    EXPECT_TRUE(promLint(text).empty()) << text;
}

TEST(MetricsRegistry, JsonSinkCarriesSchemaVersion)
{
    MetricsRegistry reg;
    reg.addCounter("rtp_c_total", "c", {{"k", "v"}}, 1.0);
    reg.histogram("rtp_h", "h", {}, {1.0}).observe(0.5);
    const std::string json = reg.toJson();
    EXPECT_EQ(json.rfind("{\"schema_version\":" +
                             std::to_string(kResultSchemaVersion),
                         0),
              0u)
        << json;
    EXPECT_TRUE(contains(json, "\"name\":\"rtp_c_total\"")) << json;
    EXPECT_TRUE(contains(json, "\"type\":\"counter\"")) << json;
    EXPECT_TRUE(contains(json, "\"buckets\":[[\"1\",1],[\"+Inf\",0]]"))
        << json;
}

TEST(MetricsRegistry, RejectsInvalidNamesAndKindClashes)
{
    MetricsRegistry reg;
    EXPECT_THROW(reg.addCounter("bad name", "", {}, 1.0),
                 std::logic_error);
    EXPECT_THROW(reg.addCounter("rtp_ok", "", {{"0bad", "v"}}, 1.0),
                 std::logic_error);
    reg.addCounter("rtp_x", "", {}, 1.0);
    EXPECT_THROW(reg.setGauge("rtp_x", "", {}, 1.0), std::logic_error);

    EXPECT_TRUE(MetricsRegistry::validMetricName("rtp:cycles_total"));
    EXPECT_FALSE(MetricsRegistry::validMetricName("9lead"));
    EXPECT_FALSE(MetricsRegistry::validLabelName("with:colon"));
    EXPECT_EQ(MetricsRegistry::sanitizeName("l1.hit-rate"), "l1_hit_rate");
    EXPECT_EQ(MetricsRegistry::sanitizeName("9x"), "_9x");
}

TEST(MetricsRegistry, HistogramMergeRejectsMismatchedBounds)
{
    HistogramData a({1.0, 2.0});
    HistogramData b({1.0, 4.0});
    a.observe(0.5);
    b.observe(0.5);
    EXPECT_THROW(a.merge(b), std::logic_error);
    HistogramData c({1.0, 2.0});
    c.observe(1.5);
    a.merge(c);
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(a.counts[0], 1u);
    EXPECT_EQ(a.counts[1], 1u);
}

TEST(MetricsRegistry, DefaultLatencyBoundsAreAscending)
{
    const std::vector<double> bounds = defaultLatencyBounds();
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_DOUBLE_EQ(bounds.front(), 0.001);
    EXPECT_GT(bounds.back(), 60.0);
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(PromLint, FlagsGrammarAndTypeViolations)
{
    EXPECT_TRUE(promLint("").empty());
    EXPECT_FALSE(promLint("foo{bad 2\n").empty());
    EXPECT_FALSE(promLint("foo\n").empty()); // no value
    EXPECT_FALSE(promLint("foo nope\n").empty());
    EXPECT_FALSE(promLint("9bad 1\n").empty());
    // Duplicate TYPE, and TYPE after the family's samples.
    EXPECT_FALSE(
        promLint("# TYPE a counter\n# TYPE a counter\na 1\n").empty());
    EXPECT_FALSE(promLint("a 1\n# TYPE a counter\n").empty());
    EXPECT_FALSE(promLint("# TYPE a nonsense\na 1\n").empty());
    // Clean document accepted.
    EXPECT_TRUE(promLint("# HELP a help text\n# TYPE a counter\n"
                         "a{x=\"1\"} 2\na{x=\"2\"} 3\n")
                    .empty());
}

TEST(PromLint, EnforcesHistogramDiscipline)
{
    const std::string head = "# TYPE h histogram\n";
    // Non-cumulative buckets.
    EXPECT_FALSE(promLint(head + "h_bucket{le=\"1\"} 5\n"
                                 "h_bucket{le=\"+Inf\"} 3\n"
                                 "h_sum 1\nh_count 3\n")
                     .empty());
    // Missing +Inf bucket.
    EXPECT_FALSE(promLint(head + "h_bucket{le=\"1\"} 1\n"
                                 "h_sum 1\nh_count 1\n")
                     .empty());
    // _count disagreeing with the +Inf bucket.
    EXPECT_FALSE(promLint(head + "h_bucket{le=\"1\"} 1\n"
                                 "h_bucket{le=\"+Inf\"} 3\n"
                                 "h_sum 1\nh_count 4\n")
                     .empty());
    // Histogram sampled without a recognised suffix.
    EXPECT_FALSE(promLint(head + "h 3\n").empty());
    // The well-formed version of the same series.
    EXPECT_TRUE(promLint(head + "h_bucket{le=\"1\"} 1\n"
                                "h_bucket{le=\"+Inf\"} 3\n"
                                "h_sum 9\nh_count 3\n")
                    .empty());
}

TEST(MetricsBridges, PopulateFromProfileLintsClean)
{
    // Drive the profiler by hand through one tiny synthetic run: one
    // box-test step at cycle 0, idle drain to cycle 3.
    CycleProfiler profile;
    profile.attach(1);
    profile.onEvent(0, 0);
    profile.noteExec(0, CycleCat::BoxTest, ProfRayType::Occlusion);
    profile.noteL1Access(0, true);
    profile.notePredictorLookup(0, false);
    profile.closeStep(0, 0, true, false);
    profile.finish(3);

    MetricsRegistry reg;
    populateFromProfile(reg, profile);
    const std::string text = reg.renderProm();
    EXPECT_TRUE(promLint(text).empty()) << text;
    EXPECT_TRUE(contains(
        text, "rtp_profile_cycles_total{category=\"box_test\","
              "ray_type=\"occlusion\",sm=\"0\"} 1"))
        << text;
    EXPECT_TRUE(contains(text, "rtp_profile_elapsed_cycles 4")) << text;
    EXPECT_TRUE(contains(text, "rtp_profile_runs_total 1")) << text;
    EXPECT_TRUE(contains(
        text, "rtp_profile_pred_lookups_total{sm=\"0\"} 1"))
        << text;
    // Every category appears in the stable per-category totals, even
    // the ones this run never touched.
    for (std::size_t c = 0; c < kCycleCatCount; ++c)
        EXPECT_TRUE(contains(
            text, std::string("rtp_profile_category_cycles_total{"
                              "category=\"") +
                      cycleCatName(static_cast<CycleCat>(c)) + "\"}"))
            << cycleCatName(static_cast<CycleCat>(c));
}

TEST(MetricsBridges, PopulateFromStatsCoversAllThreeShapes)
{
    StatGroup stats;
    stats.inc("rays_completed", 5);
    stats.set("speedup", 1.5);
    stats.addSample("miss.latency", 3);
    stats.addSample("miss.latency", 40);

    MetricsRegistry reg;
    populateFromStats(reg, stats, {{"scene", "SB"}});
    const std::string text = reg.renderProm();
    EXPECT_TRUE(promLint(text).empty()) << text;
    EXPECT_TRUE(contains(
        text, "rtp_sim_rays_completed_total{scene=\"SB\"} 5"))
        << text;
    EXPECT_TRUE(contains(text, "rtp_sim_speedup{scene=\"SB\"} 1.5"))
        << text;
    EXPECT_TRUE(contains(text, "# TYPE rtp_sim_miss_latency histogram"))
        << text;
    EXPECT_TRUE(contains(text, "rtp_sim_miss_latency_count{scene=\"SB\"} 2"))
        << text;
}

} // namespace
} // namespace rtp
