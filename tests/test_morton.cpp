/** @file Morton code tests. */

#include <gtest/gtest.h>

#include "util/morton.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

TEST(Morton, ExpandBits10Examples)
{
    EXPECT_EQ(mortonExpandBits10(0u), 0u);
    EXPECT_EQ(mortonExpandBits10(1u), 1u);
    EXPECT_EQ(mortonExpandBits10(2u), 8u);      // bit 1 -> bit 3
    EXPECT_EQ(mortonExpandBits10(3u), 9u);
    EXPECT_EQ(mortonExpandBits10(0x3ffu), 0x9249249u);
}

TEST(Morton, Encode3DInterleaves)
{
    // x=1,y=0,z=0 -> bit 2; y=1 -> bit 1; z=1 -> bit 0.
    EXPECT_EQ(mortonEncode3D(1, 0, 0), 4u);
    EXPECT_EQ(mortonEncode3D(0, 1, 0), 2u);
    EXPECT_EQ(mortonEncode3D(0, 0, 1), 1u);
    EXPECT_EQ(mortonEncode3D(1, 1, 1), 7u);
}

TEST(Morton, Encode3DIsInjectiveOnSamples)
{
    Rng rng(31);
    std::vector<std::uint32_t> keys;
    std::vector<std::uint64_t> coords;
    for (int i = 0; i < 2000; ++i) {
        std::uint32_t x = rng.nextBounded(1024);
        std::uint32_t y = rng.nextBounded(1024);
        std::uint32_t z = rng.nextBounded(1024);
        std::uint64_t packed =
            (static_cast<std::uint64_t>(x) << 20) | (y << 10) | z;
        std::uint32_t key = mortonEncode3D(x, y, z);
        for (std::size_t j = 0; j < keys.size(); ++j) {
            if (keys[j] == key) {
                EXPECT_EQ(coords[j], packed);
            }
        }
        keys.push_back(key);
        coords.push_back(packed);
    }
}

TEST(Morton, LocalityProperty)
{
    // Adjacent cells must differ in fewer high bits than distant cells
    // on average (the whole point of Z-order for ray sorting).
    auto high_bits_shared = [](std::uint32_t a, std::uint32_t b) {
        std::uint32_t x = a ^ b;
        int shared = 30;
        while (x) {
            x >>= 1;
            shared--;
        }
        return shared;
    };
    double near_acc = 0, far_acc = 0;
    Rng rng(32);
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        std::uint32_t x = rng.nextBounded(1000);
        std::uint32_t y = rng.nextBounded(1000);
        std::uint32_t z = rng.nextBounded(1000);
        std::uint32_t base = mortonEncode3D(x, y, z);
        near_acc += high_bits_shared(base, mortonEncode3D(x + 1, y, z));
        far_acc += high_bits_shared(
            base, mortonEncode3D((x + 500) % 1024, (y + 500) % 1024, z));
    }
    EXPECT_GT(near_acc / n, far_acc / n);
}

TEST(Morton, Encode6DUsesAllFields)
{
    std::uint32_t base = mortonEncode6D(1, 2, 3, 4, 5, 6);
    EXPECT_NE(base, mortonEncode6D(2, 2, 3, 4, 5, 6));
    EXPECT_NE(base, mortonEncode6D(1, 3, 3, 4, 5, 6));
    EXPECT_NE(base, mortonEncode6D(1, 2, 4, 4, 5, 6));
    EXPECT_NE(base, mortonEncode6D(1, 2, 3, 5, 5, 6));
    EXPECT_NE(base, mortonEncode6D(1, 2, 3, 4, 6, 6));
    EXPECT_NE(base, mortonEncode6D(1, 2, 3, 4, 5, 7));
}

TEST(Morton, ExpandBits5Placement)
{
    // Bit i of the input moves to bit 6*i.
    EXPECT_EQ(mortonExpandBits5(1u), 1u);
    EXPECT_EQ(mortonExpandBits5(2u), 1u << 6);
    EXPECT_EQ(mortonExpandBits5(4u), 1u << 12);
    EXPECT_EQ(mortonExpandBits5(16u), 1u << 24);
}

} // namespace
} // namespace rtp
