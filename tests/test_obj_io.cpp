/** @file OBJ import/export tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "scene/obj_io.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

TEST(ObjIo, RoundTripPreservesGeometry)
{
    Mesh out;
    out.addBox(Aabb{{0, 0, 0}, {1, 2, 3}});
    out.addTriangle({5, 5, 5}, {6, 5, 5}, {5, 6, 5});

    std::string path = "/tmp/rtp_test.obj";
    ASSERT_TRUE(saveObj(path, out));

    Mesh in;
    ASSERT_TRUE(loadObj(path, in));
    ASSERT_EQ(in.size(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(in.triangles()[i].v0, out.triangles()[i].v0);
        EXPECT_EQ(in.triangles()[i].v1, out.triangles()[i].v1);
        EXPECT_EQ(in.triangles()[i].v2, out.triangles()[i].v2);
    }
    std::remove(path.c_str());
}

TEST(ObjIo, ParsesQuadFacesByFanTriangulation)
{
    std::string path = "/tmp/rtp_test_quad.obj";
    {
        std::ofstream f(path);
        f << "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n";
        f << "f 1 2 3 4\n";
    }
    Mesh m;
    ASSERT_TRUE(loadObj(path, m));
    EXPECT_EQ(m.size(), 2u);
    float area = 0;
    for (const auto &t : m.triangles())
        area += t.area();
    EXPECT_NEAR(area, 1.0f, 1e-5f);
    std::remove(path.c_str());
}

TEST(ObjIo, ParsesSlashFormatsAndNegativeIndices)
{
    std::string path = "/tmp/rtp_test_slash.obj";
    {
        std::ofstream f(path);
        f << "v 0 0 0\nv 1 0 0\nv 0 1 0\n";
        f << "f 1/1 2/2/2 3//3\n";
        f << "f -3 -2 -1\n"; // same triangle via negative indices
    }
    Mesh m;
    ASSERT_TRUE(loadObj(path, m));
    ASSERT_EQ(m.size(), 2u);
    EXPECT_EQ(m.triangles()[0].v0, m.triangles()[1].v0);
    EXPECT_EQ(m.triangles()[0].v2, m.triangles()[1].v2);
    std::remove(path.c_str());
}

TEST(ObjIo, IgnoresCommentsAndUnknownTags)
{
    std::string path = "/tmp/rtp_test_misc.obj";
    {
        std::ofstream f(path);
        f << "# header comment\n";
        f << "mtllib foo.mtl\nusemtl bar\no object\ns off\n";
        f << "v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nvt 0 0\n";
        f << "f 1 2 3\n";
    }
    Mesh m;
    ASSERT_TRUE(loadObj(path, m));
    EXPECT_EQ(m.size(), 1u);
    std::remove(path.c_str());
}

TEST(ObjIo, MissingFileFails)
{
    Mesh m;
    EXPECT_FALSE(loadObj("/tmp/nope_not_an_obj.obj", m));
}

TEST(ObjIo, OutOfRangeIndicesDropped)
{
    std::string path = "/tmp/rtp_test_oor.obj";
    {
        std::ofstream f(path);
        f << "v 0 0 0\nv 1 0 0\nv 0 1 0\n";
        f << "f 1 2 9\n"; // 9 does not exist -> face dropped
        f << "f 1 2 3\n";
    }
    Mesh m;
    ASSERT_TRUE(loadObj(path, m));
    EXPECT_EQ(m.size(), 1u);
    std::remove(path.c_str());
}

TEST(ObjIo, ProceduralSceneSurvivesRoundTrip)
{
    Scene s = makeScene(SceneId::Sibenik, 0.02f);
    std::string path = "/tmp/rtp_test_scene.obj";
    ASSERT_TRUE(saveObj(path, s.mesh));
    Mesh in;
    ASSERT_TRUE(loadObj(path, in));
    EXPECT_EQ(in.size(), s.mesh.size());
    Aabb a = s.mesh.bounds(), b = in.bounds();
    EXPECT_NEAR(a.diagonal(), b.diagonal(), 0.05f * a.diagonal());
    std::remove(path.c_str());
}

} // namespace
} // namespace rtp
