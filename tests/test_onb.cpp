/** @file Orthonormal basis and hemisphere sampling tests. */

#include <gtest/gtest.h>

#include "geometry/onb.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

TEST(Onb, BasisIsOrthonormalProperty)
{
    Rng rng(21);
    for (int i = 0; i < 300; ++i) {
        Vec3 n = normalize(Vec3{rng.nextRange(-1, 1),
                                rng.nextRange(-1, 1),
                                rng.nextRange(-1, 1)});
        if (length(n) < 0.5f)
            continue;
        Onb onb(n);
        EXPECT_NEAR(length(onb.tangent), 1.0f, 1e-4f);
        EXPECT_NEAR(length(onb.bitangent), 1.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.tangent, onb.bitangent), 0.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.tangent, onb.normal), 0.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.bitangent, onb.normal), 0.0f, 1e-4f);
    }
}

TEST(Onb, ToWorldMapsZToNormal)
{
    Vec3 n = normalize(Vec3{1.0f, 2.0f, -0.5f});
    Onb onb(n);
    Vec3 mapped = onb.toWorld(Vec3{0, 0, 1});
    EXPECT_NEAR(mapped.x, n.x, 1e-5f);
    EXPECT_NEAR(mapped.y, n.y, 1e-5f);
    EXPECT_NEAR(mapped.z, n.z, 1e-5f);
}

TEST(Onb, HandlesNegativeZNormal)
{
    Onb onb(Vec3{0, 0, -1});
    EXPECT_NEAR(dot(onb.tangent, onb.bitangent), 0.0f, 1e-5f);
    EXPECT_NEAR(length(onb.tangent), 1.0f, 1e-5f);
}

TEST(CosineSample, StaysInUpperHemisphere)
{
    Rng rng(22);
    for (int i = 0; i < 500; ++i) {
        Vec3 d = cosineSampleHemisphere(rng.nextFloat(), rng.nextFloat());
        EXPECT_GE(d.z, 0.0f);
        EXPECT_NEAR(length(d), 1.0f, 1e-4f);
    }
}

TEST(CosineSample, MeanCosineMatchesDistribution)
{
    // For a cosine-weighted hemisphere, E[cos(theta)] = 2/3.
    Rng rng(23);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += cosineSampleHemisphere(rng.nextFloat(),
                                      rng.nextFloat()).z;
    EXPECT_NEAR(acc / n, 2.0 / 3.0, 0.01);
}

TEST(Spherical, AxesMapToExpectedAngles)
{
    float theta, phi;
    directionToSpherical(Vec3{0, 0, 1}, theta, phi);
    EXPECT_NEAR(theta, 0.0f, 1e-3f);
    directionToSpherical(Vec3{0, 0, -1}, theta, phi);
    EXPECT_NEAR(theta, 180.0f, 0.01f);
    directionToSpherical(Vec3{1, 0, 0}, theta, phi);
    EXPECT_NEAR(theta, 90.0f, 1e-3f);
    EXPECT_NEAR(phi, 0.0f, 1e-3f);
    directionToSpherical(Vec3{0, 1, 0}, theta, phi);
    EXPECT_NEAR(phi, 90.0f, 1e-3f);
    directionToSpherical(Vec3{-1, 0, 0}, theta, phi);
    EXPECT_NEAR(phi, 180.0f, 1e-3f);
}

TEST(Spherical, RangesRespectedProperty)
{
    Rng rng(24);
    for (int i = 0; i < 1000; ++i) {
        Vec3 d = normalize(Vec3{rng.nextRange(-1, 1),
                                rng.nextRange(-1, 1),
                                rng.nextRange(-1, 1)});
        if (std::isnan(d.x))
            continue;
        float theta, phi;
        directionToSpherical(d, theta, phi);
        EXPECT_GE(theta, 0.0f);
        EXPECT_LT(theta, 180.0f);
        EXPECT_GE(phi, 0.0f);
        EXPECT_LT(phi, 360.0f);
    }
}

} // namespace
} // namespace rtp
