/** @file Limit-study oracle tests (Section 6.3 orderings). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "core/oracle.hpp"
#include "gpu/config.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    RayBatch ao;

    Rig() : scene(makeScene(SceneId::Sibenik, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 40;
        cfg.height = 40;
        cfg.samplesPerPixel = 2;
        cfg.viewportFraction = 0.15f;
        ao = generateAoRays(scene, bvh, cfg);
    }
};

Rig &
rig()
{
    static Rig r;
    return r;
}

LimitStudyConfig
defaultCfg()
{
    LimitStudyConfig cfg;
    cfg.predictor = SimConfig::proposed().predictor;
    cfg.trainingDelay = 256;
    return cfg;
}

LimitResult
run(OracleMode mode)
{
    return runLimitStudy(rig().bvh, rig().scene.mesh.triangles(),
                         rig().ao.rays, defaultCfg(), mode);
}

TEST(Oracle, RealisticBasicSanity)
{
    LimitResult r = run(OracleMode::Realistic);
    EXPECT_EQ(r.rays, rig().ao.rays.size());
    EXPECT_GT(r.hits, 0u);
    EXPECT_LE(r.verified, r.predicted);
    EXPECT_LE(r.verified, r.hits);
    EXPECT_GT(r.baselineAccesses, 0u);
}

TEST(Oracle, VerifiedOrderingAcrossModes)
{
    // The paper's Figure 2 ordering: OL >= Realistic, OT >= OL (the
    // unbounded table can only widen the candidate pool), OU >= OT.
    LimitResult realistic = run(OracleMode::Realistic);
    LimitResult ol = run(OracleMode::OracleLookup);
    LimitResult ot = run(OracleMode::OracleTraining);
    LimitResult ou = run(OracleMode::OracleUpdates);

    EXPECT_GE(ol.verifiedRate(), realistic.verifiedRate());
    EXPECT_GE(ot.verifiedRate(), ol.verifiedRate() * 0.99);
    EXPECT_GE(ou.verifiedRate(), ot.verifiedRate() * 0.99);
}

TEST(Oracle, MemorySavingsOrdering)
{
    LimitResult realistic = run(OracleMode::Realistic);
    LimitResult ol = run(OracleMode::OracleLookup);
    LimitResult ot = run(OracleMode::OracleTraining);
    // Oracle lookups avoid misprediction overhead entirely, so their
    // savings dominate the realistic predictor's.
    EXPECT_GE(ol.memorySavings(), realistic.memorySavings());
    EXPECT_GE(ot.memorySavings(), ol.memorySavings() * 0.99);
}

TEST(Oracle, OracleLookupNeverMispredicts)
{
    LimitResult ol = run(OracleMode::OracleLookup);
    // By construction OL only predicts when verification will succeed.
    EXPECT_EQ(ol.predicted, ol.verified);
}

TEST(Oracle, VerifiedBoundedByHitRate)
{
    for (OracleMode mode :
         {OracleMode::Realistic, OracleMode::OracleLookup,
          OracleMode::OracleTraining, OracleMode::OracleUpdates}) {
        LimitResult r = run(mode);
        EXPECT_LE(r.verified, r.hits)
            << "mode " << static_cast<int>(mode);
    }
}

TEST(Oracle, SavingsAreFraction)
{
    for (OracleMode mode :
         {OracleMode::Realistic, OracleMode::OracleTraining}) {
        LimitResult r = run(mode);
        EXPECT_GT(r.memorySavings(), -1.0);
        EXPECT_LT(r.memorySavings(), 1.0);
    }
}

TEST(Oracle, ZeroDelayTrainsFaster)
{
    LimitStudyConfig fast = defaultCfg();
    fast.trainingDelay = 0;
    LimitStudyConfig slow = defaultCfg();
    slow.trainingDelay = 4096;
    LimitResult f = runLimitStudy(rig().bvh,
                                  rig().scene.mesh.triangles(),
                                  rig().ao.rays, fast,
                                  OracleMode::Realistic);
    LimitResult s = runLimitStudy(rig().bvh,
                                  rig().scene.mesh.triangles(),
                                  rig().ao.rays, slow,
                                  OracleMode::Realistic);
    // Immediate training sees strictly more usable history.
    EXPECT_GE(f.predictedRate(), s.predictedRate());
}

} // namespace
} // namespace rtp
