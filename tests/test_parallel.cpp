/** @file Thread-pool / parallel sweep engine tests (exp/parallel.hpp). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bvh/builder.hpp"
#include "exp/harness.hpp"
#include "exp/parallel.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

/** Scoped override of one environment variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    bool had_ = false;
    std::string old_;
};

/** Scoped RTP_THREADS override. */
struct ThreadsEnv : ScopedEnv
{
    explicit ThreadsEnv(const char *value)
        : ScopedEnv("RTP_THREADS", value)
    {
    }
};

/** Scoped RTP_SIM_THREADS override. */
struct SimThreadsEnv : ScopedEnv
{
    explicit SimThreadsEnv(const char *value)
        : ScopedEnv("RTP_SIM_THREADS", value)
    {
    }
};

TEST(ThreadPool, DefaultThreadCountHonoursEnv)
{
    {
        ThreadsEnv env("3");
        EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    }
    {
        ThreadsEnv env(nullptr);
        EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    }
    {
        // Malformed values must fail loudly, not clamp to a default
        // that silently changes the benchmark's thread budget.
        ThreadsEnv env("0");
        EXPECT_THROW(ThreadPool::defaultThreadCount(),
                     std::invalid_argument);
    }
    {
        ThreadsEnv env("abc");
        EXPECT_THROW(ThreadPool::defaultThreadCount(),
                     std::invalid_argument);
    }
}

TEST(ParseThreadCountEnv, AcceptsPlainPositiveIntegers)
{
    {
        ThreadsEnv env("1");
        EXPECT_EQ(parseThreadCountEnv("RTP_THREADS", 7), 1u);
    }
    {
        ThreadsEnv env("16");
        EXPECT_EQ(parseThreadCountEnv("RTP_THREADS", 7), 16u);
    }
    {
        ThreadsEnv env(nullptr); // unset -> fallback
        EXPECT_EQ(parseThreadCountEnv("RTP_THREADS", 7), 7u);
    }
}

TEST(ParseThreadCountEnv, RejectsGarbageWithDescriptiveError)
{
    const char *bad[] = {"abc", "", "4x", "-2", "+3", " 3",
                         "3 ",  "0", "0x4", "999999999999"};
    for (const char *value : bad) {
        ThreadsEnv env(value);
        try {
            parseThreadCountEnv("RTP_THREADS", 1);
            FAIL() << "expected throw for RTP_THREADS=\"" << value
                   << "\"";
        } catch (const std::invalid_argument &e) {
            // The message must name the variable and echo the value so
            // a CI log alone identifies the misconfiguration.
            EXPECT_NE(std::string(e.what()).find("RTP_THREADS"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find(value),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(ThreadBudget, ComposesSweepAndSimThreads)
{
    {
        // Both set: honour both exactly.
        ThreadsEnv sweep("3");
        SimThreadsEnv sim("4");
        ThreadBudget b = threadBudgetFromEnv(8);
        EXPECT_EQ(b.sweepThreads, 3u);
        EXPECT_EQ(b.simThreads, 4u);
    }
    {
        // Only RTP_SIM_THREADS: the sweep pool shrinks so the total
        // thread count stays near the hardware budget.
        ThreadsEnv sweep(nullptr);
        SimThreadsEnv sim("4");
        ThreadBudget b = threadBudgetFromEnv(8);
        EXPECT_EQ(b.sweepThreads, 2u);
        EXPECT_EQ(b.simThreads, 4u);
    }
    {
        // Oversubscribed sim threads still leave one sweep worker.
        ThreadsEnv sweep(nullptr);
        SimThreadsEnv sim("16");
        ThreadBudget b = threadBudgetFromEnv(8);
        EXPECT_EQ(b.sweepThreads, 1u);
        EXPECT_EQ(b.simThreads, 16u);
    }
    {
        // Only RTP_THREADS: sequential event loop, as before.
        ThreadsEnv sweep("5");
        SimThreadsEnv sim(nullptr);
        ThreadBudget b = threadBudgetFromEnv(8);
        EXPECT_EQ(b.sweepThreads, 5u);
        EXPECT_EQ(b.simThreads, 1u);
    }
    {
        // Neither: all hardware goes to the sweep pool.
        ThreadsEnv sweep(nullptr);
        SimThreadsEnv sim(nullptr);
        ThreadBudget b = threadBudgetFromEnv(8);
        EXPECT_EQ(b.sweepThreads, 8u);
        EXPECT_EQ(b.simThreads, 1u);
    }
    {
        // Malformed sim-thread values surface through the budget too.
        ThreadsEnv sweep(nullptr);
        SimThreadsEnv sim("two");
        EXPECT_THROW(threadBudgetFromEnv(8), std::invalid_argument);
    }
}

TEST(ThreadPool, ExecutesEverySubmittedJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                count.fetch_add(1);
            });
        // No wait(): the destructor must still run every job.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(RunSweep, PreservesSubmissionOrder)
{
    ThreadsEnv env("4");
    std::vector<int> items;
    for (int i = 0; i < 64; ++i)
        items.push_back(i);
    std::vector<int> results = runSweep(items, [](int v) {
        // Stagger completion so out-of-order finishes would show up.
        std::this_thread::sleep_for(
            std::chrono::microseconds((64 - v) * 10));
        return v * v;
    });
    ASSERT_EQ(results.size(), items.size());
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(RunSweep, EmptyInput)
{
    std::vector<int> empty;
    std::vector<int> results = runSweep(empty, [](int v) { return v; });
    EXPECT_TRUE(results.empty());
}

TEST(RunSweep, RethrowsFirstErrorInItemOrder)
{
    ThreadsEnv env("4");
    std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    try {
        runSweep(items, [](int v) {
            if (v == 2 || v == 5)
                throw std::runtime_error("boom " + std::to_string(v));
            return v;
        });
        FAIL() << "expected exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 2");
    }
}

TEST(RunSweep, ReportsTiming)
{
    ThreadsEnv env("2");
    std::vector<int> items = {1, 2, 3, 4};
    SweepTiming timing;
    runSweep(
        items,
        [](int v) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return v;
        },
        nullptr, &timing);
    EXPECT_EQ(timing.runs, 4u);
    EXPECT_EQ(timing.threads, 2u);
    EXPECT_GT(timing.wallSeconds, 0.0);
    EXPECT_GE(timing.serialSeconds, timing.wallSeconds * 0.5);
}

/** Shared scene rig for the simulation determinism tests. */
struct Rig
{
    Scene scene;
    Bvh bvh;
    RayBatch ao;

    Rig() : scene(makeScene(SceneId::Sibenik, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 24;
        cfg.height = 24;
        cfg.samplesPerPixel = 2;
        cfg.viewportFraction = 0.3f;
        ao = generateAoRays(scene, bvh, cfg);
    }
};

Rig &
rig()
{
    static Rig r;
    return r;
}

std::vector<SimPoint>
sweepPoints()
{
    // A mixed sweep: baseline, proposed, and two config variants.
    std::vector<SimPoint> points;
    SimConfig variant = SimConfig::proposed();
    variant.predictor.goUpLevel = 2;
    SimConfig two_sms = SimConfig::baseline();
    two_sms.numSms = 2;
    for (const SimConfig &cfg : {SimConfig::baseline(),
                                 SimConfig::proposed(), variant,
                                 two_sms}) {
        SimPoint p;
        p.bvh = &rig().bvh;
        p.triangles = &rig().scene.mesh.triangles();
        p.rays = &rig().ao.rays;
        p.config = cfg;
        points.push_back(p);
    }
    return points;
}

TEST(RunSweep, SimulationResultsIdenticalAcrossThreadCounts)
{
    // The tentpole contract: the same sweep at 1 thread and N threads
    // must produce bitwise-identical results in the same order.
    std::vector<SimResult> serial, parallel;
    {
        ThreadsEnv env("1");
        serial = runSimPoints(sweepPoints(), nullptr);
    }
    {
        ThreadsEnv env("8");
        parallel = runSimPoints(sweepPoints(), nullptr);
    }
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles) << "point " << i;
        EXPECT_EQ(serial[i].totalMemAccesses(),
                  parallel[i].totalMemAccesses())
            << "point " << i;
        // Full bitwise equality including every stat and double field.
        EXPECT_EQ(serial[i].toJson(), parallel[i].toJson())
            << "point " << i;
    }
}

TEST(RunSweep, ShardedSimThreadsEnvPreservesResults)
{
    // RTP_SIM_THREADS routes every sweep point through the sharded
    // event loop; the results must stay byte-identical to the
    // sequential reference regardless of the sweep pool size.
    std::vector<SimResult> sequential, sharded;
    {
        ThreadsEnv sweep("1");
        SimThreadsEnv sim(nullptr);
        sequential = runSimPoints(sweepPoints(), nullptr);
    }
    {
        ThreadsEnv sweep("2");
        SimThreadsEnv sim("2");
        sharded = runSimPoints(sweepPoints(), nullptr);
    }
    ASSERT_EQ(sequential.size(), sharded.size());
    for (std::size_t i = 0; i < sequential.size(); ++i)
        EXPECT_EQ(sequential[i].toJson(), sharded[i].toJson())
            << "point " << i;
}

TEST(SimResultJson, DeterministicAndWellFormed)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::proposed());
    std::string a = r.toJson();
    EXPECT_EQ(a, r.toJson());
    EXPECT_EQ(a.front(), '{');
    EXPECT_EQ(a.back(), '}');
    EXPECT_NE(a.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(a.find("\"stats\":"), std::string::npos);
    EXPECT_NE(a.find("\"mem_stats\":"), std::string::npos);
}

TEST(JsonResultSink, WritesDeterministicFile)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::baseline());
    std::string written[2];
    for (int round = 0; round < 2; ++round) {
        std::string dir = ::testing::TempDir();
        setenv("RTP_JSON_DIR", dir.c_str(), 1);
        JsonResultSink sink("test_sink");
        sink.add("scene/\"quoted\"", r);
        sink.add("scene/second", r);
        ASSERT_TRUE(sink.close());
        unsetenv("RTP_JSON_DIR");
        std::ifstream in(sink.path());
        ASSERT_TRUE(in.good());
        std::ostringstream body;
        body << in.rdbuf();
        written[round] = body.str();
    }
    EXPECT_EQ(written[0], written[1]);
    EXPECT_NE(written[0].find("\"bench\":\"test_sink\""),
              std::string::npos);
    EXPECT_NE(written[0].find("\"scene/\\\"quoted\\\"\":"),
              std::string::npos);
    EXPECT_NE(written[0].find("\"results\":{"), std::string::npos);
}

TEST(RunPairsParallel, MatchesSerialRunPair)
{
    WorkloadConfig wc;
    wc.detail = 0.05f;
    wc.raygen.width = 24;
    wc.raygen.height = 24;
    wc.raygen.samplesPerPixel = 2;
    wc.raygen.viewportFraction = 0.3f;
    WorkloadCache cache(wc);
    std::vector<const Workload *> ws =
        cache.getAll({SceneId::Sibenik, SceneId::FireplaceRoom});

    ThreadsEnv env("4");
    std::vector<RunOutcome> par = runPairsParallel(
        ws, SimConfig::baseline(), SimConfig::proposed(), false,
        nullptr);
    ASSERT_EQ(par.size(), ws.size());
    for (std::size_t i = 0; i < ws.size(); ++i) {
        RunOutcome ser = runPair(*ws[i], SimConfig::baseline(),
                                 SimConfig::proposed());
        EXPECT_EQ(par[i].scene, ser.scene);
        EXPECT_EQ(par[i].baseline.toJson(), ser.baseline.toJson());
        EXPECT_EQ(par[i].treatment.toJson(), ser.treatment.toJson());
    }
}

} // namespace
} // namespace rtp
