/**
 * @file
 * Per-bounce path-tracing driver tests (exp/path_driver.hpp): wave
 * shape, determinism, and the visibility contract across predictor
 * configurations and backends — every wave's contents derive from
 * simulated hits, which no predictor may change.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "exp/path_driver.hpp"

namespace rtp {
namespace {

const Workload &
workload()
{
    static WorkloadCache cache = [] {
        WorkloadConfig wc;
        wc.detail = 0.05f;
        wc.raygen.width = 12;
        wc.raygen.height = 12;
        wc.raygen.pathBounces = 3;
        return WorkloadCache(wc);
    }();
    return cache.get(SceneId::FireplaceRoom);
}

RayGenConfig
raygen()
{
    RayGenConfig rg;
    rg.width = 12;
    rg.height = 12;
    rg.pathBounces = 3;
    return rg;
}

TEST(PathDriver, WaveShapeAndTotals)
{
    PathTraceOutcome out =
        runPathTrace(workload(), SimConfig::baseline(), raygen());
    ASSERT_FALSE(out.waveRays.empty());
    EXPECT_LE(out.waveRays.size(),
              static_cast<std::size_t>(raygen().pathBounces) + 1);
    EXPECT_EQ(out.waveRays[0], 144u); // camera wave: one per pixel
    std::size_t sum = std::accumulate(out.waveRays.begin(),
                                      out.waveRays.end(),
                                      std::size_t{0});
    EXPECT_EQ(out.totalRays, sum);
    EXPECT_EQ(out.total.rayResults.size(), sum);
    EXPECT_GT(out.total.cycles, 0u);
    // Each wave emits at most one bounce per surviving segment.
    for (std::size_t i = 1; i < out.waveRays.size(); ++i)
        EXPECT_LE(out.waveRays[i], out.waveRays[i - 1]);
}

TEST(PathDriver, DeterministicAcrossRuns)
{
    PathTraceOutcome a =
        runPathTrace(workload(), SimConfig::proposed(), raygen());
    PathTraceOutcome b =
        runPathTrace(workload(), SimConfig::proposed(), raygen());
    EXPECT_EQ(a.total.cycles, b.total.cycles);
    EXPECT_EQ(a.waveRays, b.waveRays);
    EXPECT_EQ(a.total.toJson(), b.total.toJson());
}

/**
 * Predictors change timing, never visibility — so the bounce chains,
 * wave sizes, and per-ray hit results are identical across baseline,
 * hash-backend, and learned-backend runs of the same pass.
 */
TEST(PathDriver, VisibilityInvariantAcrossPredictorConfigs)
{
    SimConfig learned_cfg = SimConfig::proposed();
    learned_cfg.predictor.backend = PredictorBackendKind::Learned;

    PathTraceOutcome base =
        runPathTrace(workload(), SimConfig::baseline(), raygen());
    PathTraceOutcome hash =
        runPathTrace(workload(), SimConfig::proposed(), raygen());
    PathTraceOutcome learned =
        runPathTrace(workload(), learned_cfg, raygen());

    for (const PathTraceOutcome *o : {&hash, &learned}) {
        EXPECT_EQ(o->waveRays, base.waveRays);
        ASSERT_EQ(o->total.rayResults.size(),
                  base.total.rayResults.size());
        for (std::size_t i = 0; i < base.total.rayResults.size(); ++i) {
            const RayResult &x = base.total.rayResults[i];
            const RayResult &y = o->total.rayResults[i];
            ASSERT_EQ(x.hit, y.hit) << "ray " << i;
            if (x.hit) {
                std::uint32_t bx, by;
                std::memcpy(&bx, &x.t, sizeof bx);
                std::memcpy(&by, &y.t, sizeof by);
                ASSERT_EQ(bx, by) << "ray " << i;
                ASSERT_EQ(x.prim, y.prim) << "ray " << i;
            }
        }
    }

    // The warm predictor actually worked across waves: some rays
    // beyond the camera wave were predicted.
    EXPECT_GT(hash.total.stats.get("rays_predicted"), 0u);
    EXPECT_GT(learned.total.stats.get("lookups"), 0u);
}

TEST(PathDriver, BouncesKnobBoundsWaves)
{
    RayGenConfig rg = raygen();
    rg.pathBounces = 0; // camera wave only
    PathTraceOutcome out =
        runPathTrace(workload(), SimConfig::baseline(), rg);
    EXPECT_EQ(out.waveRays.size(), 1u);
    EXPECT_EQ(out.totalRays, 144u);

    rg.pathBounces = 1;
    PathTraceOutcome two =
        runPathTrace(workload(), SimConfig::baseline(), rg);
    EXPECT_LE(two.waveRays.size(), 2u);
    EXPECT_GE(two.totalRays, out.totalRays);
}

} // namespace
} // namespace rtp
