/** @file Predictor unit tests (timed lookups, Go Up Level training). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "core/predictor.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

std::vector<Triangle>
gridTriangles(int n)
{
    std::vector<Triangle> tris;
    for (int i = 0; i < n; ++i) {
        float x = static_cast<float>(i % 10);
        float z = static_cast<float>(i / 10);
        tris.emplace_back(Vec3{x, 0, z}, Vec3{x + 0.9f, 0, z},
                          Vec3{x, 0, z + 0.9f});
    }
    return tris;
}

struct Fixture
{
    std::vector<Triangle> tris = gridTriangles(100);
    Bvh bvh;
    Fixture() { bvh = BvhBuilder().build(tris); }
};

Ray
downRay(float x, float z)
{
    Ray r;
    r.origin = {x, 5.0f, z};
    r.dir = {0, -1, 0};
    r.tMax = 20.0f;
    r.kind = RayKind::Occlusion;
    return r;
}

TEST(Predictor, MissWithoutTraining)
{
    Fixture f;
    PredictorConfig cfg;
    RayPredictor p(cfg, f.bvh);
    Cycle ready;
    EXPECT_FALSE(p.lookup(downRay(5, 5), 0, ready).has_value());
    EXPECT_GE(ready, 1u); // access latency applied
}

TEST(Predictor, TrainingEnablesPrediction)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.goUpLevel = 0;
    RayPredictor p(cfg, f.bvh);
    std::uint32_t leaf = f.bvh.leafOfPrimSlot(0);
    Ray r = downRay(5, 5);
    p.update(r, leaf, 10);
    Cycle ready;
    auto pred = p.lookup(r, 20, ready);
    ASSERT_TRUE(pred.has_value());
    ASSERT_EQ(pred->nodes.size(), 1u);
    EXPECT_EQ(pred->nodes[0], leaf);
}

TEST(Predictor, GoUpLevelStoresAncestor)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.goUpLevel = 2;
    RayPredictor p(cfg, f.bvh);
    std::uint32_t leaf = f.bvh.leafOfPrimSlot(0);
    Ray r = downRay(0.3f, 0.3f);
    p.update(r, leaf, 0);
    Cycle ready;
    auto pred = p.lookup(r, 5, ready);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->nodes[0], f.bvh.ancestorOf(leaf, 2));
    EXPECT_NE(pred->nodes[0], leaf);
}

TEST(Predictor, DisabledNeverPredicts)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.enabled = false;
    RayPredictor p(cfg, f.bvh);
    Ray r = downRay(5, 5);
    p.update(r, f.bvh.leafOfPrimSlot(0), 0);
    Cycle ready;
    EXPECT_FALSE(p.lookup(r, 10, ready).has_value());
    EXPECT_EQ(ready, 10u); // no latency when disabled
}

TEST(Predictor, PortQueueingDelaysBursts)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.accessPorts = 4;
    cfg.accessLatency = 1;
    RayPredictor p(cfg, f.bvh);
    // 8 lookups in the same cycle: ports serve 4 per cycle.
    Cycle last = 0;
    for (int i = 0; i < 8; ++i) {
        Cycle ready;
        p.lookup(downRay(static_cast<float>(i), 5), 100, ready);
        last = std::max(last, ready);
    }
    EXPECT_EQ(last, 102u); // second wave starts at 101, +1 latency
}

TEST(Predictor, SinglePortSerialises)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.accessPorts = 1;
    cfg.accessLatency = 2;
    RayPredictor p(cfg, f.bvh);
    Cycle r1, r2, r3;
    p.lookup(downRay(1, 1), 10, r1);
    p.lookup(downRay(2, 2), 10, r2);
    p.lookup(downRay(3, 3), 10, r3);
    EXPECT_EQ(r1, 12u);
    EXPECT_EQ(r2, 13u);
    EXPECT_EQ(r3, 14u);
}

TEST(Predictor, SimilarRaysShareEntries)
{
    Fixture f;
    PredictorConfig cfg;
    cfg.goUpLevel = 1;
    RayPredictor p(cfg, f.bvh);
    Ray a = downRay(5.0f, 5.0f);
    Ray b = downRay(5.05f, 5.02f);
    p.update(a, f.bvh.leafOfPrimSlot(3), 0);
    Cycle ready;
    EXPECT_TRUE(p.lookup(b, 10, ready).has_value())
        << "nearly identical ray should hit the trained entry";
}

TEST(Predictor, StatsTrackActivity)
{
    Fixture f;
    PredictorConfig cfg;
    RayPredictor p(cfg, f.bvh);
    Cycle ready;
    p.lookup(downRay(1, 1), 0, ready);
    p.update(downRay(1, 1), f.bvh.leafOfPrimSlot(0), 5);
    p.lookup(downRay(1, 1), 10, ready);
    EXPECT_EQ(p.stats().get("lookups"), 2u);
    EXPECT_EQ(p.stats().get("trained"), 1u);
    EXPECT_EQ(p.stats().get("predicted"), 1u);
}

} // namespace
} // namespace rtp
