/**
 * @file
 * PredictorBackend interface tests (core/predictor_backend.hpp): name
 * parsing, the learned backend's lookup/train/stat contract, warm
 * cloning, and the timed predictor unit running end-of-run invariant
 * checks over a non-default backend.
 */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "core/predictor.hpp"
#include "core/predictor_backend.hpp"
#include "scene/registry.hpp"
#include "util/check.hpp"

namespace rtp {
namespace {

Aabb
bounds()
{
    return Aabb{{0, 0, 0}, {100, 100, 100}};
}

Ray
makeRay(Vec3 o, Vec3 d)
{
    Ray r;
    r.origin = o;
    r.dir = normalize(d);
    return r;
}

TEST(BackendName, RoundTripsAndRejectsStrictly)
{
    EXPECT_STREQ(backendName(PredictorBackendKind::HashTable), "hash");
    EXPECT_STREQ(backendName(PredictorBackendKind::Learned), "learned");
    PredictorBackendKind kind = PredictorBackendKind::HashTable;
    EXPECT_TRUE(parseBackendName("learned", kind));
    EXPECT_EQ(kind, PredictorBackendKind::Learned);
    EXPECT_TRUE(parseBackendName("hash", kind));
    EXPECT_EQ(kind, PredictorBackendKind::HashTable);
    for (const char *bad : {"Hash", "LEARNED", "", "learned2", "table"}) {
        kind = PredictorBackendKind::Learned;
        EXPECT_FALSE(parseBackendName(bad, kind)) << bad;
        EXPECT_EQ(kind, PredictorBackendKind::Learned); // untouched
    }
}

TEST(BackendFactory, BuildsRequestedKind)
{
    PredictorTableConfig table;
    LearnedBackendConfig learned;
    auto hash = makePredictorBackend(PredictorBackendKind::HashTable,
                                     table, learned, 15, bounds());
    auto model = makePredictorBackend(PredictorBackendKind::Learned,
                                      table, learned, 15, bounds());
    EXPECT_EQ(hash->kind(), PredictorBackendKind::HashTable);
    EXPECT_EQ(model->kind(), PredictorBackendKind::Learned);
}

TEST(LearnedBackend, ColdMissThenTrainedHit)
{
    LearnedBackendConfig cfg;
    LearnedBackend b(cfg, bounds());
    Ray ray = makeRay({50, 50, 50}, {0, 0, 1});
    std::vector<std::uint32_t> nodes;

    EXPECT_FALSE(b.lookupInto(ray, 0, nodes));
    EXPECT_TRUE(nodes.empty());

    b.train(ray, 0, 42);
    EXPECT_TRUE(b.lookupInto(ray, 0, nodes));
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], 42u);

    // A nearby ray (same feature cell, well within the accept radius)
    // generalises to the same prediction — the point of the model.
    Ray near = makeRay({50.01f, 50.0f, 49.99f}, {0.001f, 0, 1});
    EXPECT_TRUE(b.lookupInto(near, 0, nodes));
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], 42u);

    // A far ray misses: the radius bounds generalisation.
    Ray far = makeRay({5, 5, 5}, {0, 1, 0});
    EXPECT_FALSE(b.lookupInto(far, 0, nodes));

    // Lookup accounting: 4 lookups, 2 hits, 2 misses, 1 update.
    EXPECT_EQ(b.stats().get("lookups"), 4u);
    EXPECT_EQ(b.stats().get("lookup_hits"), 2u);
    EXPECT_EQ(b.stats().get("lookup_misses"), 2u);
    EXPECT_EQ(b.stats().get("updates"), 1u);
}

TEST(LearnedBackend, DeterministicAcrossIdenticalRuns)
{
    LearnedBackendConfig cfg;
    cfg.prototypes = 8; // force evictions
    auto run = [&] {
        LearnedBackend b(cfg, bounds());
        std::vector<std::uint32_t> nodes;
        std::uint64_t signature = 0;
        for (int i = 0; i < 200; ++i) {
            float x = 5.0f + (i * 37) % 90;
            float z = 5.0f + (i * 53) % 90;
            Ray r = makeRay({x, 50, z}, {0, 1, 0});
            if (b.lookupInto(r, 0, nodes))
                signature = signature * 31 + nodes[0] + 1;
            b.train(r, 0, static_cast<std::uint32_t>(i % 13));
        }
        return signature * 1000003 + b.stats().get("lookup_hits");
    };
    EXPECT_EQ(run(), run());
}

TEST(LearnedBackend, CloneIsIndependentAndWarm)
{
    LearnedBackendConfig cfg;
    LearnedBackend b(cfg, bounds());
    Ray ray = makeRay({50, 50, 50}, {0, 0, 1});
    b.train(ray, 0, 7);

    auto copy = b.clone();
    std::vector<std::uint32_t> nodes;
    EXPECT_TRUE(copy->lookupInto(ray, 0, nodes)); // warm
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0], 7u);

    // Training the clone does not leak into the original.
    Ray other = makeRay({10, 10, 10}, {1, 0, 0});
    copy->train(other, 0, 9);
    EXPECT_EQ(copy->snapshotStats().validEntries, 2u);
    EXPECT_EQ(b.snapshotStats().validEntries, 1u);
}

TEST(LearnedBackend, ResetAndOccupancy)
{
    LearnedBackendConfig cfg;
    cfg.prototypes = 16;
    LearnedBackend b(cfg, bounds());
    BackendOccupancy occ = b.snapshotStats();
    EXPECT_EQ(occ.capacity, 16u);
    EXPECT_EQ(occ.validEntries, 0u);
    EXPECT_GT(occ.sizeBytes, 0.0);

    b.train(makeRay({50, 50, 50}, {0, 0, 1}), 0, 1);
    b.train(makeRay({10, 80, 20}, {0, 1, 0}), 0, 2);
    EXPECT_EQ(b.snapshotStats().validEntries, 2u);

    b.reset();
    EXPECT_EQ(b.snapshotStats().validEntries, 0u);
    std::vector<std::uint32_t> nodes;
    EXPECT_FALSE(
        b.lookupInto(makeRay({50, 50, 50}, {0, 0, 1}), 0, nodes));
}

TEST(LearnedBackend, EvictsLruWhenFull)
{
    LearnedBackendConfig cfg;
    cfg.prototypes = 2;
    LearnedBackend b(cfg, bounds());
    // Three far-apart rays into a 2-prototype pool: the third recruit
    // evicts the least recently used (the first).
    Ray a = makeRay({10, 10, 10}, {1, 0, 0});
    Ray c = makeRay({50, 50, 50}, {0, 1, 0});
    Ray e = makeRay({90, 90, 90}, {0, 0, 1});
    b.train(a, 0, 1);
    b.train(c, 0, 2);
    b.train(e, 0, 3);
    EXPECT_EQ(b.snapshotStats().validEntries, 2u);
    EXPECT_EQ(b.stats().get("entry_evictions"), 1u);
    std::vector<std::uint32_t> nodes;
    EXPECT_FALSE(b.lookupInto(a, 0, nodes)); // evicted
    EXPECT_TRUE(b.lookupInto(e, 0, nodes));
    EXPECT_EQ(nodes[0], 3u);
}

/**
 * The timed predictor unit over the learned backend keeps the
 * end-of-run stat invariants the checker enforces for any backend:
 * every lookup is exactly one hit or miss, predicted == hits.
 */
TEST(PredictorUnit, LearnedBackendPassesFinalStateCheck)
{
    Scene scene = makeScene(SceneId::Sibenik, 0.05f);
    Bvh bvh = BvhBuilder().build(scene.mesh.triangles());

    PredictorConfig config;
    config.enabled = true;
    config.backend = PredictorBackendKind::Learned;
    RayPredictor pred(config, bvh);

    std::vector<std::uint32_t> nodes;
    Cycle ready = 0;
    Vec3 c = bvh.sceneBounds().center();
    for (int i = 0; i < 64; ++i) {
        Ray r = makeRay({c.x + 0.1f * i, c.y, c.z},
                        {0.01f * (i % 7), 1, 0.01f * (i % 5)});
        pred.lookupInto(r, i, ready, nodes);
        pred.update(r, static_cast<std::uint32_t>(i % 11), i);
    }

    InvariantChecker check;
    pred.checkFinalState(check);
    EXPECT_GT(check.checksRun(), 0u);
    EXPECT_EQ(pred.stats().get("lookups"), 64u);
    EXPECT_EQ(pred.backend().stats().get("lookup_hits") +
                  pred.backend().stats().get("lookup_misses"),
              64u);
}

/** Copying a RayPredictor clones the backend deeply (PredictorSet). */
TEST(PredictorUnit, CopyClonesBackendState)
{
    Scene scene = makeScene(SceneId::Sibenik, 0.05f);
    Bvh bvh = BvhBuilder().build(scene.mesh.triangles());
    PredictorConfig config;
    config.enabled = true;
    config.backend = PredictorBackendKind::Learned;
    RayPredictor pred(config, bvh);

    Vec3 c = bvh.sceneBounds().center();
    Ray r = makeRay(c, {0, 1, 0});
    pred.update(r, 5, 0);

    RayPredictor copy(pred);
    EXPECT_EQ(copy.backend().kind(), PredictorBackendKind::Learned);
    EXPECT_EQ(copy.backend().snapshotStats().validEntries, 1u);
    // Mutating the copy leaves the original untouched.
    copy.update(makeRay(c + Vec3{30, 0, 0}, {1, 0, 0}), 6, 1);
    EXPECT_EQ(copy.backend().snapshotStats().validEntries, 2u);
    EXPECT_EQ(pred.backend().snapshotStats().validEntries, 1u);
}

} // namespace
} // namespace rtp
