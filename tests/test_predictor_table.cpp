/** @file Predictor table tests (Section 4.1, Figure 5). */

#include <gtest/gtest.h>

#include "core/hash.hpp"
#include "core/predictor_table.hpp"

namespace rtp {
namespace {

PredictorTableConfig
smallConfig(std::uint32_t entries = 8, std::uint32_t ways = 2,
            std::uint32_t nodes = 1)
{
    PredictorTableConfig c;
    c.numEntries = entries;
    c.ways = ways;
    c.nodesPerEntry = nodes;
    return c;
}

TEST(PredictorTable, MissOnEmpty)
{
    PredictorTable t(smallConfig(), 15);
    EXPECT_FALSE(t.lookup(0x1234).has_value());
    EXPECT_EQ(t.stats().get("lookup_misses"), 1u);
}

TEST(PredictorTable, UpdateThenLookup)
{
    PredictorTable t(smallConfig(), 15);
    t.update(0x1234, 77);
    auto nodes = t.lookup(0x1234);
    ASSERT_TRUE(nodes.has_value());
    ASSERT_EQ(nodes->size(), 1u);
    EXPECT_EQ((*nodes)[0], 77u);
}

TEST(PredictorTable, TagDisambiguatesSameSet)
{
    // Direct-mapped tables still tag-match (Section 6.1.2).
    PredictorTable t(smallConfig(4, 1), 15);
    int idx_bits = t.indexBits();
    ASSERT_EQ(idx_bits, 2);
    // Two hashes folding to the same index but different tags: XOR in a
    // pair of identical index-width chunks so the fold cancels.
    std::uint32_t h1 = 0x0001;
    std::uint32_t h2 = h1 ^ (0x3u << idx_bits) ^ (0x3u << (2 * idx_bits));
    ASSERT_EQ(foldHash(h1, 15, idx_bits), foldHash(h2, 15, idx_bits));
    ASSERT_NE(h1, h2);
    t.update(h1, 10);
    EXPECT_FALSE(t.lookup(h2).has_value());
    EXPECT_TRUE(t.lookup(h1).has_value());
}

TEST(PredictorTable, UpdateOverwritesSingleNodeEntry)
{
    PredictorTable t(smallConfig(8, 2, 1), 15);
    t.update(0x42, 1);
    t.update(0x42, 2);
    auto nodes = t.lookup(0x42);
    ASSERT_TRUE(nodes.has_value());
    EXPECT_EQ(nodes->size(), 1u);
    EXPECT_EQ((*nodes)[0], 2u);
}

TEST(PredictorTable, MultiNodeEntryAccumulates)
{
    PredictorTable t(smallConfig(8, 2, 4), 15);
    t.update(0x42, 1);
    t.update(0x42, 2);
    t.update(0x42, 3);
    auto nodes = t.lookup(0x42);
    ASSERT_TRUE(nodes.has_value());
    EXPECT_EQ(nodes->size(), 3u);
}

TEST(PredictorTable, DuplicateNodeNotAddedTwice)
{
    PredictorTable t(smallConfig(8, 2, 4), 15);
    t.update(0x42, 1);
    t.update(0x42, 1);
    auto nodes = t.lookup(0x42);
    ASSERT_TRUE(nodes.has_value());
    EXPECT_EQ(nodes->size(), 1u);
}

TEST(PredictorTable, LruEntryEvictionWithinSet)
{
    // 2-way set: insert three tags mapping to one set; LRU evicted.
    PredictorTable t(smallConfig(2, 2), 15);
    ASSERT_EQ(t.numSets(), 1u);
    t.update(0x1, 10);
    t.update(0x2, 20);
    t.lookup(0x1); // make 0x2 the LRU
    t.update(0x3, 30);
    EXPECT_TRUE(t.lookup(0x1).has_value());
    EXPECT_FALSE(t.lookup(0x2).has_value());
    EXPECT_TRUE(t.lookup(0x3).has_value());
    EXPECT_EQ(t.stats().get("entry_evictions"), 1u);
}

TEST(PredictorTable, NodeReplacementLru)
{
    auto cfg = smallConfig(8, 2, 2);
    cfg.nodeReplacement = NodeReplacement::LRU;
    PredictorTable t(cfg, 15);
    t.update(0x5, 1);
    t.update(0x5, 2);
    // Entry is full; inserting 3 evicts node 1 (older).
    t.update(0x5, 3);
    auto nodes = t.lookup(0x5);
    ASSERT_TRUE(nodes.has_value());
    EXPECT_EQ(nodes->size(), 2u);
    EXPECT_TRUE((*nodes)[0] == 2u || (*nodes)[1] == 2u);
    EXPECT_TRUE((*nodes)[0] == 3u || (*nodes)[1] == 3u);
}

TEST(PredictorTable, NodeReplacementLfu)
{
    auto cfg = smallConfig(8, 2, 2);
    cfg.nodeReplacement = NodeReplacement::LFU;
    PredictorTable t(cfg, 15);
    t.update(0x5, 1);
    t.update(0x5, 2);
    t.update(0x5, 1); // node 1 now frequency 2
    t.update(0x5, 3); // evicts node 2 (lower frequency)
    auto nodes = t.lookup(0x5);
    ASSERT_TRUE(nodes.has_value());
    bool has1 = false, has2 = false;
    for (auto n : *nodes) {
        has1 |= n == 1;
        has2 |= n == 2;
    }
    EXPECT_TRUE(has1);
    EXPECT_FALSE(has2);
}

TEST(PredictorTable, NodeReplacementLruK)
{
    auto cfg = smallConfig(8, 2, 2);
    cfg.nodeReplacement = NodeReplacement::LRUK;
    cfg.lruK = 2;
    PredictorTable t(cfg, 15);
    t.update(0x5, 1);
    t.update(0x5, 1); // node 1 has K=2 references
    t.update(0x5, 2); // node 2 has one reference (K-th ref = 0)
    t.update(0x5, 3); // evicts node 2 (no K-th reference)
    auto nodes = t.lookup(0x5);
    ASSERT_TRUE(nodes.has_value());
    bool has2 = false;
    for (auto n : *nodes)
        has2 |= n == 2;
    EXPECT_FALSE(has2);
}

TEST(PredictorTable, ConfirmCreditsOnlyTheUsedSlot)
{
    // Regression: lookup() used to bump recency/frequency/history for
    // every slot of the entry on every lookup, so all slots aged in
    // lockstep and intra-entry replacement degenerated to insertion
    // order. Slot credit now flows through confirm() for the specific
    // node a ray actually used.
    auto cfg = smallConfig(8, 2, 2);
    cfg.nodeReplacement = NodeReplacement::LRU;
    PredictorTable t(cfg, 15);
    t.update(0x5, 1);
    t.update(0x5, 2);  // node 2 stored most recently
    t.lookup(0x5);     // returns both; must not equalise slot recency
    t.confirm(0x5, 1); // the ray verified from node 1
    t.update(0x5, 3);  // must evict node 2, the least recently used
    auto nodes = t.lookup(0x5);
    ASSERT_TRUE(nodes.has_value());
    bool has1 = false, has2 = false, has3 = false;
    for (auto n : *nodes) {
        has1 |= n == 1;
        has2 |= n == 2;
        has3 |= n == 3;
    }
    EXPECT_TRUE(has1);
    EXPECT_FALSE(has2);
    EXPECT_TRUE(has3);
    EXPECT_EQ(t.stats().get("confirms"), 1u);
}

TEST(PredictorTable, LookupDoesNotFabricateLruKHistory)
{
    // Under the old per-lookup slot bumping, every lookup appended a
    // reference time to every slot's LRU-K history, so a slot stored
    // once gained a fabricated K-th reference and the "no K-th
    // reference -> evict first" rule (Section 6.1.3) stopped firing.
    auto cfg = smallConfig(8, 2, 2);
    cfg.nodeReplacement = NodeReplacement::LRUK;
    cfg.lruK = 2;
    PredictorTable t(cfg, 15);
    t.update(0x5, 1);
    t.update(0x5, 1); // node 1: full K=2 reference history
    t.update(0x5, 2); // node 2: one reference, no K-th
    t.lookup(0x5);
    t.lookup(0x5);
    t.lookup(0x5);
    t.update(0x5, 3); // must still evict node 2
    auto nodes = t.lookup(0x5);
    ASSERT_TRUE(nodes.has_value());
    bool has2 = false;
    for (auto n : *nodes)
        has2 |= n == 2;
    EXPECT_FALSE(has2);
}

TEST(PredictorTable, ConfirmOnMissingEntryOrNodeIsNoop)
{
    PredictorTable t(smallConfig(8, 2, 2), 15);
    t.confirm(0x123, 7); // nothing stored: must not crash or allocate
    EXPECT_FALSE(t.lookup(0x123).has_value());
    t.update(0x9, 4);
    t.confirm(0x9, 5); // entry exists but node 5 was never stored
    EXPECT_EQ(t.stats().get("confirms"), 0u);
}

TEST(PredictorTable, SizeBytesMatchesPaper)
{
    // Table 3 / Section 6.1.1: 1024 entries x (1 valid + 15 tag + 27
    // node) bits = 43 bits -> ~5.5 KB.
    PredictorTableConfig cfg;
    cfg.numEntries = 1024;
    cfg.ways = 4;
    cfg.nodesPerEntry = 1;
    PredictorTable t(cfg, 15);
    EXPECT_EQ(t.bitsPerEntry(), 43u);
    EXPECT_NEAR(t.sizeBytes(), 5504.0, 1.0); // 1024*43/8 = 5504 B
    EXPECT_NEAR(t.sizeBytes() / 1024.0, 5.4, 0.2);
}

TEST(PredictorTable, ResetInvalidatesEverything)
{
    PredictorTable t(smallConfig(), 15);
    t.update(0x7, 9);
    t.reset();
    EXPECT_FALSE(t.lookup(0x7).has_value());
}

TEST(PredictorTable, WaysGeometry)
{
    PredictorTable direct(smallConfig(16, 1), 15);
    EXPECT_EQ(direct.numSets(), 16u);
    PredictorTable assoc4(smallConfig(16, 4), 15);
    EXPECT_EQ(assoc4.numSets(), 4u);
    PredictorTable assoc8(smallConfig(16, 8), 15);
    EXPECT_EQ(assoc8.numSets(), 2u);
}

} // namespace
} // namespace rtp
