/**
 * @file
 * Cycle-attribution profiler integration tests (util/profile.hpp,
 * docs/observability.md): the conservation law (every SM's category
 * counts sum to the elapsed cycles) on every bundled scene, byte-equal
 * profile JSON between the sequential and sharded event loops, and the
 * zero-perturbation contract — simulated output identical with the
 * profiler attached or absent.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "exp/workload.hpp"
#include "gpu/simulator.hpp"
#include "scene/registry.hpp"
#include "util/check.hpp"
#include "util/profile.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace rtp {
namespace {

/** Small shared workload set: every bundled scene at low detail. */
WorkloadCache &
cache()
{
    static WorkloadCache *c = [] {
        WorkloadConfig wc;
        wc.detail = 0.05f;
        wc.raygen.width = 24;
        wc.raygen.height = 24;
        wc.raygen.samplesPerPixel = 1;
        wc.raygen.viewportFraction = 0.3f;
        return new WorkloadCache(wc);
    }();
    return *c;
}

/**
 * Run @p w under @p config at @p sim_threads with the given observers
 * attached (either may be nullptr) and return the SimResult JSON.
 */
std::string
runWith(const Workload &w, SimConfig config, std::uint32_t sim_threads,
        CycleProfiler *profile, InvariantChecker *check)
{
    config.simThreads = sim_threads;
    config.profile = profile;
    config.check = check;
    return Simulation(config, w.bvh, w.scene.mesh.triangles())
        .run(w.ao.rays)
        .toJson();
}

/** Sum of totalFor over every category. */
std::uint64_t
grandTotal(const CycleProfiler &profile)
{
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < kCycleCatCount; ++c)
        total += profile.totalFor(static_cast<CycleCat>(c));
    return total;
}

TEST(Profile, ConservationHoldsOnEveryScene)
{
    // The headline law on the paper-style configuration: for every
    // bundled scene, every SM's category counts sum exactly to the
    // run's elapsed cycles. The simulator itself re-asserts this
    // through the attached InvariantChecker (violations throw).
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    for (SceneId id : allSceneIds()) {
        const Workload &w = cache().get(id);
        CycleProfiler profile;
        InvariantChecker check;
        runWith(w, config, 1, &profile, &check);
        EXPECT_EQ(profile.runs(), 1u) << w.scene.shortName;
        ASSERT_EQ(profile.numSms(), config.numSms) << w.scene.shortName;
        EXPECT_GT(profile.elapsed(), 0u) << w.scene.shortName;
        for (std::uint32_t sm = 0; sm < profile.numSms(); ++sm)
            EXPECT_EQ(profile.smTotal(sm), profile.elapsed())
                << w.scene.shortName << " sm=" << sm;
        EXPECT_EQ(grandTotal(profile),
                  profile.elapsed() * profile.numSms())
            << w.scene.shortName;
        EXPECT_GT(check.checksRun(), 0u) << w.scene.shortName;
    }
}

TEST(Profile, ConservationHoldsOnBaselineConfig)
{
    // Predictor-off baseline: a different event mix (no predictor, no
    // repacker) must still conserve, and the predictor-specific
    // categories must stay exactly zero.
    SimConfig config = SimConfig::baseline();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    CycleProfiler profile;
    InvariantChecker check;
    runWith(w, config, 1, &profile, &check);
    for (std::uint32_t sm = 0; sm < profile.numSms(); ++sm)
        EXPECT_EQ(profile.smTotal(sm), profile.elapsed()) << "sm=" << sm;
    EXPECT_EQ(profile.totalFor(CycleCat::PredLookup), 0u);
    EXPECT_EQ(profile.totalFor(CycleCat::PredVerify), 0u);
    EXPECT_EQ(profile.totalFor(CycleCat::MispredictRestart), 0u);
    EXPECT_GT(profile.totalFor(CycleCat::BoxTest), 0u);
    EXPECT_GT(profile.totalFor(CycleCat::TriTest), 0u);
}

TEST(Profile, ProposedConfigPopulatesPredictorCategories)
{
    // The proposed configuration must light up the predictor-path
    // categories and the meta tallies the cost/benefit report reads.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::Sibenik);
    CycleProfiler profile;
    runWith(w, config, 1, &profile, nullptr);
    EXPECT_GT(profile.totalFor(CycleCat::PredLookup), 0u);
    EXPECT_GT(profile.totalFor(CycleCat::BoxTest), 0u);
    EXPECT_GT(profile.totalFor(CycleCat::TriTest), 0u);
    EXPECT_GT(profile.totalFor(CycleCat::IdleDrain), 0u);
    const std::uint64_t stalls = profile.totalFor(CycleCat::L1Stall) +
                                 profile.totalFor(CycleCat::L2Stall) +
                                 profile.totalFor(CycleCat::DramStall);
    EXPECT_GT(stalls, 0u);
    std::uint64_t lookups = 0;
    std::uint64_t l1 = 0;
    for (std::uint32_t sm = 0; sm < profile.numSms(); ++sm) {
        lookups += profile.slice(sm).predLookups;
        l1 += profile.slice(sm).l1Hits + profile.slice(sm).l1Misses;
    }
    EXPECT_GT(lookups, 0u);
    EXPECT_GT(l1, 0u);
}

TEST(Profile, ShardedProfileByteIdenticalAcrossWorkerCounts)
{
    // The profile JSON — not just the simulated result — must be
    // byte-identical at any worker count: per-SM slices are only
    // touched by the owning worker and shared-seam tallies only inside
    // the gated section, so no merge step exists to get wrong.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    for (SceneId id : {SceneId::Sibenik, SceneId::CrytekSponza}) {
        const Workload &w = cache().get(id);
        CycleProfiler seq;
        const std::string seq_result = runWith(w, config, 1, &seq, nullptr);
        const std::string seq_json = seq.toJson();
        for (std::uint32_t threads : {2u, 4u}) {
            CycleProfiler sharded;
            const std::string result =
                runWith(w, config, threads, &sharded, nullptr);
            EXPECT_EQ(seq_result, result)
                << w.scene.shortName << " @ simThreads=" << threads;
            EXPECT_EQ(seq_json, sharded.toJson())
                << w.scene.shortName << " @ simThreads=" << threads;
        }
    }
}

TEST(Profile, ZeroPerturbationByteCompare)
{
    // Attaching the profiler must not move a single simulated byte:
    // SimResult JSON, trace bytes, and telemetry timelines all match a
    // profiler-free run, sequential and sharded.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::Sibenik);
    for (std::uint32_t threads : {1u, 4u}) {
        std::string result[2];
        std::string trace[2];
        std::string telemetry[2];
        for (int with_profiler = 0; with_profiler < 2; ++with_profiler) {
            SimConfig observed = config;
            observed.simThreads = threads;
            TraceSink sink(1u << 16);
            TelemetrySampler sampler(128);
            CycleProfiler profile;
            observed.trace = &sink;
            observed.telemetry = &sampler;
            observed.profile = with_profiler ? &profile : nullptr;
            result[with_profiler] =
                Simulation(observed, w.bvh, w.scene.mesh.triangles())
                    .run(w.ao.rays)
                    .toJson();
            std::ostringstream trace_os;
            sink.writeChromeTrace(trace_os);
            trace[with_profiler] = trace_os.str();
            std::ostringstream telemetry_os;
            sampler.writeJson(telemetry_os);
            telemetry[with_profiler] = telemetry_os.str();
        }
        EXPECT_EQ(result[0], result[1]) << "simThreads=" << threads;
        EXPECT_EQ(trace[0], trace[1]) << "simThreads=" << threads;
        EXPECT_EQ(telemetry[0], telemetry[1]) << "simThreads=" << threads;
    }
}

TEST(Profile, MultiRunAccumulationKeepsConserving)
{
    // One profiler observing two runs: counts and elapsed accumulate,
    // and the conservation law holds for the aggregate (this is the
    // shape simfuzz's runDifferential exercises).
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    config.simThreads = 1;
    const Workload &w = cache().get(SceneId::Sibenik);
    CycleProfiler profile;
    InvariantChecker check;
    config.profile = &profile;
    config.check = &check;
    Simulation sim(config, w.bvh, w.scene.mesh.triangles());
    sim.run(w.ao.rays);
    const std::uint64_t once = profile.elapsed();
    sim.run(w.ao.rays);
    EXPECT_EQ(profile.runs(), 2u);
    EXPECT_EQ(profile.elapsed(), 2 * once);
    for (std::uint32_t sm = 0; sm < profile.numSms(); ++sm)
        EXPECT_EQ(profile.smTotal(sm), profile.elapsed()) << "sm=" << sm;

    // clear() really resets the aggregate.
    profile.clear();
    EXPECT_EQ(profile.elapsed(), 0u);
    EXPECT_EQ(profile.runs(), 0u);
    EXPECT_EQ(profile.numSms(), 0u);
}

TEST(Profile, JsonCarriesSchemaAndCatalogue)
{
    SimConfig config = SimConfig::proposed();
    config.numSms = 2;
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    CycleProfiler profile;
    runWith(w, config, 1, &profile, nullptr);
    const std::string json = profile.toJson();
    EXPECT_EQ(json.rfind("{\"schema_version\":", 0), 0u) << json;
    EXPECT_NE(json.find("\"profile\":{"), std::string::npos);
    for (std::size_t c = 0; c < kCycleCatCount; ++c)
        EXPECT_NE(json.find(cycleCatName(static_cast<CycleCat>(c))),
                  std::string::npos)
            << cycleCatName(static_cast<CycleCat>(c));
    for (std::size_t t = 0; t < kProfRayTypeCount; ++t)
        EXPECT_NE(json.find(profRayTypeName(static_cast<ProfRayType>(t))),
                  std::string::npos)
            << profRayTypeName(static_cast<ProfRayType>(t));
}

} // namespace
} // namespace rtp
