/** @file Ray buffer slot manager tests. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "rtunit/ray_buffer.hpp"

namespace rtp {
namespace {

Ray
dummyRay(float x)
{
    Ray r;
    r.origin = {x, 0, 0};
    r.dir = {0, 0, 1};
    return r;
}

TEST(RayBuffer, CapacityAndFreeSlots)
{
    RayBuffer buf(256);
    EXPECT_EQ(buf.capacity(), 256u);
    EXPECT_EQ(buf.freeSlots(), 256u);
    EXPECT_TRUE(buf.hasFree(256));
    EXPECT_FALSE(buf.hasFree(257));
}

TEST(RayBuffer, AllocateStoresRay)
{
    RayBuffer buf(4);
    std::uint32_t s = buf.allocate(dummyRay(7.0f), 42, 8);
    EXPECT_EQ(buf.slot(s).ray.origin.x, 7.0f);
    EXPECT_EQ(buf.slot(s).globalId, 42u);
    EXPECT_EQ(buf.slot(s).phase, RayPhase::Lookup);
    EXPECT_EQ(buf.freeSlots(), 3u);
}

TEST(RayBuffer, ReleaseRecycles)
{
    RayBuffer buf(2);
    std::uint32_t a = buf.allocate(dummyRay(1), 0, 8);
    std::uint32_t b = buf.allocate(dummyRay(2), 1, 8);
    EXPECT_NE(a, b);
    EXPECT_FALSE(buf.hasFree(1));
    buf.release(a);
    EXPECT_TRUE(buf.hasFree(1));
    std::uint32_t c = buf.allocate(dummyRay(3), 2, 8);
    EXPECT_EQ(c, a); // recycled slot
    EXPECT_EQ(buf.slot(c).ray.origin.x, 3.0f);
}

TEST(RayBuffer, AllocationResetsState)
{
    RayBuffer buf(1);
    std::uint32_t s = buf.allocate(dummyRay(1), 0, 8);
    buf.slot(s).hit = true;
    buf.slot(s).predicted = true;
    buf.slot(s).stack.push(5);
    buf.release(s);
    std::uint32_t t = buf.allocate(dummyRay(2), 1, 8);
    ASSERT_EQ(s, t);
    EXPECT_FALSE(buf.slot(t).hit);
    EXPECT_FALSE(buf.slot(t).predicted);
    EXPECT_TRUE(buf.slot(t).stack.empty());
}

TEST(RayBuffer, ExhaustedAllocateThrows)
{
    // Regression: allocating past capacity used to read back() of an
    // empty free list (undefined behaviour) and hand out a garbage
    // slot. It must fail loudly and leave resident rays untouched.
    RayBuffer buf(1);
    std::uint32_t s = buf.allocate(dummyRay(1), 0, 8);
    EXPECT_THROW(buf.allocate(dummyRay(2), 1, 8), std::logic_error);
    EXPECT_EQ(buf.slot(s).ray.origin.x, 1.0f); // resident ray intact
    EXPECT_EQ(buf.freeSlots(), 0u);
    buf.release(s);
    EXPECT_NO_THROW(buf.allocate(dummyRay(3), 2, 8));
}

} // namespace
} // namespace rtp
