/** @file Ray file serialization tests. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rays/rayfile.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

RayBatch
makeBatch(int n)
{
    Rng rng(55);
    RayBatch b;
    b.primaryRays = 100;
    b.primaryHits = 90;
    for (int i = 0; i < n; ++i) {
        Ray r;
        r.origin = {rng.nextRange(-10, 10), rng.nextRange(-10, 10),
                    rng.nextRange(-10, 10)};
        r.dir = {rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                 rng.nextRange(-1, 1)};
        r.tMin = rng.nextRange(0, 0.1f);
        r.tMax = rng.nextRange(1, 50);
        r.kind = i % 3 == 0 ? RayKind::Occlusion
                            : (i % 3 == 1 ? RayKind::Primary
                                          : RayKind::Secondary);
        b.rays.push_back(r);
    }
    return b;
}

TEST(RayFile, RoundTrip)
{
    std::string path = "/tmp/rtp_test.rays";
    RayBatch out = makeBatch(137);
    ASSERT_TRUE(saveRayFile(path, out));

    RayBatch in;
    ASSERT_TRUE(loadRayFile(path, in));
    ASSERT_EQ(in.rays.size(), out.rays.size());
    EXPECT_EQ(in.primaryRays, out.primaryRays);
    EXPECT_EQ(in.primaryHits, out.primaryHits);
    for (std::size_t i = 0; i < out.rays.size(); ++i) {
        EXPECT_EQ(in.rays[i].origin, out.rays[i].origin);
        EXPECT_EQ(in.rays[i].dir, out.rays[i].dir);
        EXPECT_EQ(in.rays[i].tMin, out.rays[i].tMin);
        EXPECT_EQ(in.rays[i].tMax, out.rays[i].tMax);
        EXPECT_EQ(in.rays[i].kind, out.rays[i].kind);
    }
    std::remove(path.c_str());
}

TEST(RayFile, EmptyBatch)
{
    std::string path = "/tmp/rtp_test_empty.rays";
    RayBatch out;
    ASSERT_TRUE(saveRayFile(path, out));
    RayBatch in;
    ASSERT_TRUE(loadRayFile(path, in));
    EXPECT_TRUE(in.rays.empty());
    std::remove(path.c_str());
}

TEST(RayFile, MissingFileFails)
{
    RayBatch in;
    EXPECT_FALSE(loadRayFile("/tmp/definitely_not_here.rays", in));
}

TEST(RayFile, BadMagicRejected)
{
    std::string path = "/tmp/rtp_test_bad.rays";
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOT A RAY FILE AT ALL, JUST BYTES.............";
    }
    RayBatch in;
    EXPECT_FALSE(loadRayFile(path, in));
    std::remove(path.c_str());
}

TEST(RayFile, TruncatedFileRejected)
{
    std::string path = "/tmp/rtp_test_trunc.rays";
    RayBatch out = makeBatch(10);
    ASSERT_TRUE(saveRayFile(path, out));
    // Truncate mid-record.
    {
        std::ifstream f(path, std::ios::binary);
        std::string all((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
        std::ofstream g(path, std::ios::binary | std::ios::trunc);
        g.write(all.data(),
                static_cast<std::streamsize>(all.size() - 20));
    }
    RayBatch in;
    EXPECT_FALSE(loadRayFile(path, in));
    std::remove(path.c_str());
}

} // namespace
} // namespace rtp
