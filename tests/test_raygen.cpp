/** @file Workload ray generator tests (Section 5.2 properties). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "rays/raygen.hpp"

namespace rtp {
namespace {

struct Fixture
{
    Scene scene;
    Bvh bvh;

    Fixture() : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(RayGen, PrimaryOnePerPixel)
{
    RayGenConfig cfg;
    cfg.width = 17;
    cfg.height = 11;
    RayBatch batch = generatePrimaryRays(fixture().scene, cfg);
    EXPECT_EQ(batch.rays.size(), 17u * 11u);
    EXPECT_EQ(batch.primaryRays, 17u * 11u);
    for (const Ray &r : batch.rays)
        EXPECT_EQ(r.kind, RayKind::Primary);
}

TEST(RayGen, AoSamplesPerPixelRespected)
{
    RayGenConfig cfg;
    cfg.width = 24;
    cfg.height = 24;
    cfg.samplesPerPixel = 3;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(batch.rays.size(), batch.primaryHits * 3);
    EXPECT_GT(batch.primaryHits, 0u);
    EXPECT_LE(batch.primaryHits, batch.primaryRays);
}

TEST(RayGen, AoLengthWithinPaperRange)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    float diag = fixture().bvh.sceneBounds().diagonal();
    for (const Ray &r : batch.rays) {
        EXPECT_GE(r.tMax, 0.25f * diag * 0.999f);
        EXPECT_LE(r.tMax, 0.40f * diag * 1.001f);
        EXPECT_EQ(r.kind, RayKind::Occlusion);
        EXPECT_NEAR(length(r.dir), 1.0f, 1e-4f);
    }
}

TEST(RayGen, AoOriginsLieOnSurfaces)
{
    RayGenConfig cfg;
    cfg.width = 12;
    cfg.height = 12;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    Aabb b = fixture().bvh.sceneBounds();
    Aabb grown = b;
    grown.lo -= Vec3(0.1f);
    grown.hi += Vec3(0.1f);
    for (const Ray &r : batch.rays)
        EXPECT_TRUE(grown.contains(r.origin));
}

TEST(RayGen, AoDirectionsInUpperHemisphere)
{
    // Each AO ray must leave the surface it was spawned from: tracing a
    // tiny step backwards must not be inside geometry. We check the
    // weaker, deterministic property that consecutive spp rays share an
    // origin (same primary hit).
    RayGenConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.samplesPerPixel = 4;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    for (std::size_t i = 0; i + 3 < batch.rays.size(); i += 4) {
        EXPECT_EQ(batch.rays[i].origin, batch.rays[i + 1].origin);
        EXPECT_EQ(batch.rays[i].origin, batch.rays[i + 3].origin);
    }
}

TEST(RayGen, GiBounceCountBounded)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    cfg.giBounces = 3;
    RayBatch batch = generateGiRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_GT(batch.rays.size(), 0u);
    EXPECT_LE(batch.rays.size(), batch.primaryHits * 3);
    for (const Ray &r : batch.rays)
        EXPECT_EQ(r.kind, RayKind::Secondary);
}

TEST(RayGen, ReflectionRaysMirrorDirection)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    RayBatch batch =
        generateReflectionRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(batch.rays.size(), batch.primaryHits);
    for (const Ray &r : batch.rays)
        EXPECT_NEAR(length(r.dir), 1.0f, 1e-3f);
}

TEST(RayGen, DeterministicForSeed)
{
    RayGenConfig cfg;
    cfg.width = 10;
    cfg.height = 10;
    cfg.seed = 77;
    RayBatch a = generateAoRays(fixture().scene, fixture().bvh, cfg);
    RayBatch b = generateAoRays(fixture().scene, fixture().bvh, cfg);
    ASSERT_EQ(a.rays.size(), b.rays.size());
    for (std::size_t i = 0; i < a.rays.size(); ++i) {
        EXPECT_EQ(a.rays[i].origin, b.rays[i].origin);
        EXPECT_EQ(a.rays[i].dir, b.rays[i].dir);
    }
    cfg.seed = 78;
    RayBatch c = generateAoRays(fixture().scene, fixture().bvh, cfg);
    bool any_diff = false;
    for (std::size_t i = 0; i < std::min(a.rays.size(), c.rays.size());
         ++i) {
        if (!(a.rays[i].dir == c.rays[i].dir))
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(RayGen, ViewportCropNarrowsSpread)
{
    RayGenConfig wide;
    wide.width = 16;
    wide.height = 16;
    wide.viewportFraction = 1.0f;
    RayGenConfig crop = wide;
    crop.viewportFraction = 0.1f;
    RayBatch a = generatePrimaryRays(fixture().scene, wide);
    RayBatch b = generatePrimaryRays(fixture().scene, crop);
    auto spread = [](const RayBatch &batch) {
        Vec3 lo(1e9f), hi(-1e9f);
        for (const Ray &r : batch.rays) {
            lo = min(lo, r.dir);
            hi = max(hi, r.dir);
        }
        return length(hi - lo);
    };
    EXPECT_LT(spread(b), spread(a) * 0.5f);
}

} // namespace
} // namespace rtp
