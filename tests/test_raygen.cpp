/** @file Workload ray generator tests (Section 5.2 properties). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "rays/raygen.hpp"

namespace rtp {
namespace {

struct Fixture
{
    Scene scene;
    Bvh bvh;

    Fixture() : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(RayGen, PrimaryOnePerPixel)
{
    RayGenConfig cfg;
    cfg.width = 17;
    cfg.height = 11;
    RayBatch batch = generatePrimaryRays(fixture().scene, cfg);
    EXPECT_EQ(batch.rays.size(), 17u * 11u);
    EXPECT_EQ(batch.primaryRays, 17u * 11u);
    for (const Ray &r : batch.rays)
        EXPECT_EQ(r.kind, RayKind::Primary);
}

TEST(RayGen, AoSamplesPerPixelRespected)
{
    RayGenConfig cfg;
    cfg.width = 24;
    cfg.height = 24;
    cfg.samplesPerPixel = 3;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(batch.rays.size(), batch.primaryHits * 3);
    EXPECT_GT(batch.primaryHits, 0u);
    EXPECT_LE(batch.primaryHits, batch.primaryRays);
}

TEST(RayGen, AoLengthWithinPaperRange)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    float diag = fixture().bvh.sceneBounds().diagonal();
    for (const Ray &r : batch.rays) {
        EXPECT_GE(r.tMax, 0.25f * diag * 0.999f);
        EXPECT_LE(r.tMax, 0.40f * diag * 1.001f);
        EXPECT_EQ(r.kind, RayKind::Occlusion);
        EXPECT_NEAR(length(r.dir), 1.0f, 1e-4f);
    }
}

TEST(RayGen, AoOriginsLieOnSurfaces)
{
    RayGenConfig cfg;
    cfg.width = 12;
    cfg.height = 12;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    Aabb b = fixture().bvh.sceneBounds();
    Aabb grown = b;
    grown.lo -= Vec3(0.1f);
    grown.hi += Vec3(0.1f);
    for (const Ray &r : batch.rays)
        EXPECT_TRUE(grown.contains(r.origin));
}

TEST(RayGen, AoDirectionsInUpperHemisphere)
{
    // Each AO ray must leave the surface it was spawned from: tracing a
    // tiny step backwards must not be inside geometry. We check the
    // weaker, deterministic property that consecutive spp rays share an
    // origin (same primary hit).
    RayGenConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.samplesPerPixel = 4;
    RayBatch batch = generateAoRays(fixture().scene, fixture().bvh, cfg);
    for (std::size_t i = 0; i + 3 < batch.rays.size(); i += 4) {
        EXPECT_EQ(batch.rays[i].origin, batch.rays[i + 1].origin);
        EXPECT_EQ(batch.rays[i].origin, batch.rays[i + 3].origin);
    }
}

TEST(RayGen, GiBounceCountBounded)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    cfg.giBounces = 3;
    RayBatch batch = generateGiRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_GT(batch.rays.size(), 0u);
    EXPECT_LE(batch.rays.size(), batch.primaryHits * 3);
    for (const Ray &r : batch.rays)
        EXPECT_EQ(r.kind, RayKind::Secondary);
}

TEST(RayGen, ReflectionRaysMirrorDirection)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    RayBatch batch =
        generateReflectionRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(batch.rays.size(), batch.primaryHits);
    for (const Ray &r : batch.rays)
        EXPECT_NEAR(length(r.dir), 1.0f, 1e-3f);
}

TEST(RayGen, DeterministicForSeed)
{
    RayGenConfig cfg;
    cfg.width = 10;
    cfg.height = 10;
    cfg.seed = 77;
    RayBatch a = generateAoRays(fixture().scene, fixture().bvh, cfg);
    RayBatch b = generateAoRays(fixture().scene, fixture().bvh, cfg);
    ASSERT_EQ(a.rays.size(), b.rays.size());
    for (std::size_t i = 0; i < a.rays.size(); ++i) {
        EXPECT_EQ(a.rays[i].origin, b.rays[i].origin);
        EXPECT_EQ(a.rays[i].dir, b.rays[i].dir);
    }
    cfg.seed = 78;
    RayBatch c = generateAoRays(fixture().scene, fixture().bvh, cfg);
    bool any_diff = false;
    for (std::size_t i = 0; i < std::min(a.rays.size(), c.rays.size());
         ++i) {
        if (!(a.rays[i].dir == c.rays[i].dir))
            any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

/** Every generated field of two rays matches bitwise. */
void
expectSameRay(const Ray &a, const Ray &b, std::size_t i)
{
    EXPECT_EQ(a.origin, b.origin) << "ray " << i;
    EXPECT_EQ(a.dir, b.dir) << "ray " << i;
    EXPECT_EQ(a.tMin, b.tMin) << "ray " << i;
    EXPECT_EQ(a.tMax, b.tMax) << "ray " << i;
    EXPECT_EQ(a.kind, b.kind) << "ray " << i;
}

/** Identical batches for one seed, field-by-field bitwise. */
template <typename Gen>
void
expectByteIdentical(Gen gen)
{
    RayBatch a = gen();
    RayBatch b = gen();
    ASSERT_EQ(a.rays.size(), b.rays.size());
    ASSERT_FALSE(a.rays.empty());
    EXPECT_EQ(a.primaryRays, b.primaryRays);
    EXPECT_EQ(a.primaryHits, b.primaryHits);
    for (std::size_t i = 0; i < a.rays.size(); ++i)
        expectSameRay(a.rays[i], b.rays[i], i);
}

TEST(RayGen, GiDeterministicForSeed)
{
    RayGenConfig cfg;
    cfg.width = 10;
    cfg.height = 10;
    cfg.seed = 77;
    expectByteIdentical([&] {
        return generateGiRays(fixture().scene, fixture().bvh, cfg);
    });
}

TEST(RayGen, PhotonDeterministicForSeed)
{
    RayGenConfig cfg;
    cfg.photonCount = 200;
    cfg.seed = 77;
    expectByteIdentical([&] {
        return generatePhotonRays(fixture().scene, fixture().bvh, cfg);
    });
    // A different seed emits different photons.
    RayBatch a = generatePhotonRays(fixture().scene, fixture().bvh, cfg);
    cfg.seed = 78;
    RayBatch c = generatePhotonRays(fixture().scene, fixture().bvh, cfg);
    ASSERT_FALSE(a.rays.empty());
    EXPECT_FALSE(a.rays[0].dir == c.rays[0].dir);
}

TEST(RayGen, PhotonCountAndShape)
{
    RayGenConfig cfg;
    cfg.photonCount = 150;
    cfg.photonBounces = 2;
    RayBatch batch =
        generatePhotonRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(batch.primaryRays, 150u);
    EXPECT_GE(batch.rays.size(), 150u);
    // Each photon contributes 1 + at most photonBounces segments.
    EXPECT_LE(batch.rays.size(),
              150u * (1u + static_cast<unsigned>(cfg.photonBounces)));
    Vec3 light{fixture().bvh.sceneBounds().center().x,
               fixture().bvh.sceneBounds().hi.y -
                   0.05f * fixture().bvh.sceneBounds().extent().y,
               fixture().bvh.sceneBounds().center().z};
    for (std::size_t i = 0; i < batch.rays.size(); ++i) {
        EXPECT_EQ(batch.rays[i].kind, RayKind::Secondary);
        EXPECT_NEAR(length(batch.rays[i].dir), 1.0f, 1e-3f);
    }
    // Emission segments start at the default light.
    EXPECT_EQ(batch.rays[0].origin, light);
    // photonCount = 0 falls back to one per pixel.
    cfg.photonCount = 0;
    cfg.width = 6;
    cfg.height = 5;
    RayBatch per_pixel =
        generatePhotonRays(fixture().scene, fixture().bvh, cfg);
    EXPECT_EQ(per_pixel.primaryRays, 30u);
}

TEST(RayGen, PathBounceRaysFollowHits)
{
    RayGenConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    RayBatch primary = generatePrimaryRays(fixture().scene, cfg);
    // Reference-trace the primaries to fabricate simulator results.
    BvhTraversal trav(fixture().bvh, fixture().scene.mesh.triangles());
    std::vector<PathHit> hits;
    std::size_t expect_hits = 0;
    for (const Ray &r : primary.rays) {
        HitRecord rec = trav.closestHit(r);
        hits.push_back(PathHit{rec.hit, rec.t, rec.prim});
        if (rec.hit)
            expect_hits++;
    }
    Rng rng(11, 37);
    RayBatch wave = generatePathBounceRays(
        fixture().scene, fixture().bvh, primary.rays, hits, rng);
    EXPECT_EQ(wave.rays.size(), expect_hits);
    EXPECT_EQ(wave.primaryRays, primary.rays.size());
    for (const Ray &r : wave.rays)
        EXPECT_EQ(r.kind, RayKind::Secondary);

    // Same inputs + same rng stream state => byte-identical wave.
    Rng rng2(11, 37);
    RayBatch wave2 = generatePathBounceRays(
        fixture().scene, fixture().bvh, primary.rays, hits, rng2);
    ASSERT_EQ(wave.rays.size(), wave2.rays.size());
    for (std::size_t i = 0; i < wave.rays.size(); ++i)
        expectSameRay(wave.rays[i], wave2.rays[i], i);

    // Degenerate input: a hit with an out-of-range prim is skipped
    // instead of indexing out of bounds.
    std::vector<PathHit> bogus(primary.rays.size());
    for (auto &h : bogus)
        h = PathHit{true, 1.0f, 0xFFFFFFFFu};
    Rng rng3(11, 37);
    RayBatch none = generatePathBounceRays(
        fixture().scene, fixture().bvh, primary.rays, bogus, rng3);
    EXPECT_TRUE(none.rays.empty());
}

TEST(RayGen, ViewportCropNarrowsSpread)
{
    RayGenConfig wide;
    wide.width = 16;
    wide.height = 16;
    wide.viewportFraction = 1.0f;
    RayGenConfig crop = wide;
    crop.viewportFraction = 0.1f;
    RayBatch a = generatePrimaryRays(fixture().scene, wide);
    RayBatch b = generatePrimaryRays(fixture().scene, crop);
    auto spread = [](const RayBatch &batch) {
        Vec3 lo(1e9f), hi(-1e9f);
        for (const Ray &r : batch.rays) {
            lo = min(lo, r.dir);
            hi = max(hi, r.dir);
        }
        return length(hi - lo);
    };
    EXPECT_LT(spread(b), spread(a) * 0.5f);
}

} // namespace
} // namespace rtp
