/** @file BVH refit and scene animation tests (dynamic-scene support). */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "scene/animation.hpp"
#include "scene/registry.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

TEST(Refit, IdenticalGeometryKeepsBounds)
{
    Scene s = makeScene(SceneId::FireplaceRoom, 0.04f);
    Bvh bvh = BvhBuilder().build(s.mesh.triangles());
    Aabb before = bvh.sceneBounds();
    bvh.refit(s.mesh.triangles());
    EXPECT_EQ(bvh.validate(s.mesh.size()), "");
    EXPECT_NEAR(before.diagonal(), bvh.sceneBounds().diagonal(), 1e-4f);
}

TEST(Refit, MovedGeometryStaysValidAndCorrect)
{
    Scene s = makeScene(SceneId::FireplaceRoom, 0.04f);
    Bvh bvh = BvhBuilder().build(s.mesh.triangles());

    // Move a chunk of triangles and refit.
    auto &tris = s.mesh.triangles();
    Vec3 offset{0.4f, 0.2f, -0.3f};
    for (std::size_t i = 0; i < tris.size() / 5; ++i) {
        tris[i].v0 += offset;
        tris[i].v1 += offset;
        tris[i].v2 += offset;
    }
    bvh.refit(tris);
    EXPECT_EQ(bvh.validate(s.mesh.size()), "");

    // Traversal on the refit tree must agree with brute force.
    Rng rng(5);
    Aabb b = bvh.sceneBounds();
    for (int i = 0; i < 60; ++i) {
        Ray ray;
        ray.origin = {rng.nextRange(b.lo.x, b.hi.x),
                      rng.nextRange(b.lo.y, b.hi.y),
                      rng.nextRange(b.lo.z, b.hi.z)};
        ray.dir = normalize(Vec3{rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1)} +
                            Vec3(1e-3f));
        ray.tMax = b.diagonal() * 0.3f;
        EXPECT_EQ(bruteForceAnyHit(tris, ray),
                  traverseAnyHit(bvh, tris, ray).hit)
            << "ray " << i;
    }
}

TEST(Refit, NodeIndicesStable)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    Bvh bvh = BvhBuilder().build(s.mesh.triangles());
    std::uint32_t nodes_before = bvh.nodeCount();
    std::uint32_t leaf = bvh.leafOfPrimSlot(0);
    bvh.refit(s.mesh.triangles());
    EXPECT_EQ(bvh.nodeCount(), nodes_before);
    EXPECT_EQ(bvh.leafOfPrimSlot(0), leaf);
}

TEST(Animator, SelectsRequestedFraction)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    std::size_t total = s.mesh.size();
    SceneAnimator anim(s.mesh, 0.1f);
    EXPECT_NEAR(static_cast<double>(anim.dynamicTriangles()),
                0.1 * total, 2.0);
}

TEST(Animator, DynamicClusterIsSpatiallyCoherent)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    SceneAnimator anim(s.mesh, 0.05f);
    // Bounding box of the dynamic subset should be much smaller than
    // the scene.
    Aabb cluster;
    for (std::uint32_t i : anim.dynamicIndices())
        cluster.extend(s.mesh.triangles()[i].bounds());
    EXPECT_LT(cluster.diagonal(),
              s.mesh.bounds().diagonal() * 0.8f);
}

TEST(Animator, SetFrameIsNotCumulative)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    SceneAnimator anim(s.mesh, 0.05f);
    anim.setFrame(1.0f);
    Triangle at1 = s.mesh.triangles()[anim.dynamicIndices()[0]];
    anim.setFrame(2.0f);
    anim.setFrame(1.0f);
    Triangle again = s.mesh.triangles()[anim.dynamicIndices()[0]];
    EXPECT_EQ(at1.v0, again.v0);
}

TEST(Animator, StaticTrianglesUntouched)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    std::vector<Triangle> before = s.mesh.triangles();
    SceneAnimator anim(s.mesh, 0.05f);
    anim.setFrame(3.0f);
    std::vector<bool> dynamic(s.mesh.size(), false);
    for (std::uint32_t i : anim.dynamicIndices())
        dynamic[i] = true;
    for (std::size_t i = 0; i < s.mesh.size(); i += 37) {
        if (!dynamic[i]) {
            EXPECT_EQ(before[i].v0, s.mesh.triangles()[i].v0);
        }
    }
}

TEST(Animator, MotionStaysSmallRelativeToScene)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    std::vector<Triangle> before = s.mesh.triangles();
    SceneAnimator anim(s.mesh, 0.05f);
    anim.setFrame(1.57f); // near peak displacement
    float diag = s.mesh.bounds().diagonal();
    for (std::uint32_t i : anim.dynamicIndices()) {
        float d = length(s.mesh.triangles()[i].v0 - before[i].v0);
        EXPECT_LT(d, 0.05f * diag);
    }
}

TEST(Animator, ZeroFractionIsNoop)
{
    Scene s = makeScene(SceneId::Sibenik, 0.03f);
    SceneAnimator anim(s.mesh, 0.0f);
    EXPECT_EQ(anim.dynamicTriangles(), 0u);
    anim.setFrame(5.0f); // must not crash
}

} // namespace
} // namespace rtp
