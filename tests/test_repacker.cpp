/** @file Partial warp collector tests (Section 4.4, Figure 10). */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/repacker.hpp"

namespace rtp {
namespace {

std::vector<std::uint32_t>
ids(std::uint32_t first, std::uint32_t count)
{
    std::vector<std::uint32_t> v;
    for (std::uint32_t i = 0; i < count; ++i)
        v.push_back(first + i);
    return v;
}

TEST(Repacker, BuffersBelowWarpSize)
{
    PartialWarpCollector c;
    auto warps = c.add(ids(0, 20), 100);
    EXPECT_TRUE(warps.empty());
    EXPECT_EQ(c.pendingCount(), 20u);
}

TEST(Repacker, EmitsFullWarpAtThirtyTwo)
{
    PartialWarpCollector c;
    c.add(ids(0, 20), 100);
    auto warps = c.add(ids(20, 12), 105);
    ASSERT_EQ(warps.size(), 1u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(c.pendingCount(), 0u);
    // FIFO order preserved.
    EXPECT_EQ(warps[0][0], 0u);
    EXPECT_EQ(warps[0][31], 31u);
}

TEST(Repacker, OverflowKeptForNextWarp)
{
    // Section 4.4.1's example: 30 pending + 15 added -> one warp of 32
    // leaves 13 in the collector.
    PartialWarpCollector c;
    c.add(ids(0, 30), 100);
    auto warps = c.add(ids(100, 15), 110);
    ASSERT_EQ(warps.size(), 1u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(c.pendingCount(), 13u);
}

TEST(Repacker, TimeoutFlushesPartialWarp)
{
    RepackerConfig cfg;
    cfg.timeout = 16;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 5), 100);
    EXPECT_TRUE(c.flushIfExpired(110).empty()); // not yet
    auto warp = c.flushIfExpired(116);
    EXPECT_EQ(warp.size(), 5u);
    EXPECT_EQ(c.pendingCount(), 0u);
}

TEST(Repacker, DeadlineTracksOldestAdd)
{
    RepackerConfig cfg;
    cfg.timeout = 16;
    PartialWarpCollector c(cfg);
    EXPECT_EQ(c.deadline(), 0u);
    c.add(ids(0, 3), 100);
    c.add(ids(3, 3), 110); // timer anchored at the first add
    EXPECT_EQ(c.deadline(), 116u);
}

TEST(Repacker, FlushAllDrains)
{
    PartialWarpCollector c;
    c.add(ids(0, 10), 100);
    auto warp = c.flushAll();
    EXPECT_EQ(warp.size(), 10u);
    EXPECT_EQ(c.pendingCount(), 0u);
    EXPECT_TRUE(c.flushAll().empty());
}

TEST(Repacker, TwoFullWarpsFromLargeAdd)
{
    RepackerConfig cfg;
    cfg.capacity = 64;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 31), 100);
    auto warps = c.add(ids(31, 33), 101);
    ASSERT_EQ(warps.size(), 2u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(warps[1].size(), 32u);
}

TEST(Repacker, WarpFormationDoesNotRestartLeftoverTimeout)
{
    // Regression for the flush-timer anchor: the collector used to keep
    // a single oldestAdd_ cycle that was reassigned whenever a full
    // warp formed. The timeout of every pending ray must anchor to that
    // ray's own insertion cycle, never to the latest warp-formation
    // event, or leftover rays could wait past config_.timeout.
    RepackerConfig cfg;
    cfg.timeout = 16;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 5), 100); // partial warp waiting since cycle 100
    EXPECT_EQ(c.oldestPendingCycle(), 100u);
    auto warps = c.add(ids(5, 32), 110); // full warp forms at 110
    ASSERT_EQ(warps.size(), 1u);
    EXPECT_EQ(c.pendingCount(), 5u);
    // The 5 leftover rays entered the collector at cycle 110; their
    // flush deadline is 110 + 16, not a cycle of some later event.
    EXPECT_EQ(c.oldestPendingCycle(), 110u);
    EXPECT_EQ(c.deadline(), 126u);
    EXPECT_TRUE(c.flushIfExpired(125).empty());
    EXPECT_EQ(c.flushIfExpired(126).size(), 5u);
}

TEST(Repacker, StarvationBoundHolds)
{
    // Property: driving the collector the way the RT unit does (flush
    // attempts at every deadline), no ray is ever pending longer than
    // config_.timeout after its insertion cycle.
    RepackerConfig cfg;
    cfg.timeout = 8;
    PartialWarpCollector c(cfg);
    std::uint32_t next_id = 0;
    std::map<std::uint32_t, Cycle> added;
    std::uint32_t sizes[] = {5, 31, 32, 3, 40, 1, 27, 33, 0, 12};
    Cycle now = 50;
    for (std::uint32_t n : sizes) {
        auto batch = ids(next_id, n);
        next_id += n;
        auto warps = c.add(batch, now);
        for (std::uint32_t id : batch)
            added[id] = now;
        for (const auto &w : warps)
            for (std::uint32_t id : w)
                added.erase(id);
        // Emulate the RT unit's flush event at the current deadline.
        if (c.pendingCount() > 0) {
            Cycle dl = c.deadline();
            EXPECT_EQ(dl, c.oldestPendingCycle() + cfg.timeout);
            for (std::uint32_t id :
                 c.flushIfExpired(std::min<Cycle>(dl, now + 3))) {
                EXPECT_LE(std::min<Cycle>(dl, now + 3) - added[id],
                          cfg.timeout);
                added.erase(id);
            }
        }
        now += 5;
    }
    // Every ray still pending is younger than its deadline.
    for (const auto &kv : added)
        EXPECT_LE(now - kv.second,
                  cfg.timeout + 5); // bounded residency at drain time
}

TEST(Repacker, StatsCountEvents)
{
    RepackerConfig cfg;
    cfg.timeout = 8;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 32), 100);
    c.add(ids(32, 4), 110);
    c.flushIfExpired(200);
    EXPECT_EQ(c.stats().get("full_warps_formed"), 1u);
    EXPECT_EQ(c.stats().get("timeout_flushes"), 1u);
    EXPECT_EQ(c.stats().get("rays_collected"), 36u);
}

} // namespace
} // namespace rtp
