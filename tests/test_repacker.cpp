/** @file Partial warp collector tests (Section 4.4, Figure 10). */

#include <gtest/gtest.h>

#include "core/repacker.hpp"

namespace rtp {
namespace {

std::vector<std::uint32_t>
ids(std::uint32_t first, std::uint32_t count)
{
    std::vector<std::uint32_t> v;
    for (std::uint32_t i = 0; i < count; ++i)
        v.push_back(first + i);
    return v;
}

TEST(Repacker, BuffersBelowWarpSize)
{
    PartialWarpCollector c;
    auto warps = c.add(ids(0, 20), 100);
    EXPECT_TRUE(warps.empty());
    EXPECT_EQ(c.pendingCount(), 20u);
}

TEST(Repacker, EmitsFullWarpAtThirtyTwo)
{
    PartialWarpCollector c;
    c.add(ids(0, 20), 100);
    auto warps = c.add(ids(20, 12), 105);
    ASSERT_EQ(warps.size(), 1u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(c.pendingCount(), 0u);
    // FIFO order preserved.
    EXPECT_EQ(warps[0][0], 0u);
    EXPECT_EQ(warps[0][31], 31u);
}

TEST(Repacker, OverflowKeptForNextWarp)
{
    // Section 4.4.1's example: 30 pending + 15 added -> one warp of 32
    // leaves 13 in the collector.
    PartialWarpCollector c;
    c.add(ids(0, 30), 100);
    auto warps = c.add(ids(100, 15), 110);
    ASSERT_EQ(warps.size(), 1u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(c.pendingCount(), 13u);
}

TEST(Repacker, TimeoutFlushesPartialWarp)
{
    RepackerConfig cfg;
    cfg.timeout = 16;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 5), 100);
    EXPECT_TRUE(c.flushIfExpired(110).empty()); // not yet
    auto warp = c.flushIfExpired(116);
    EXPECT_EQ(warp.size(), 5u);
    EXPECT_EQ(c.pendingCount(), 0u);
}

TEST(Repacker, DeadlineTracksOldestAdd)
{
    RepackerConfig cfg;
    cfg.timeout = 16;
    PartialWarpCollector c(cfg);
    EXPECT_EQ(c.deadline(), 0u);
    c.add(ids(0, 3), 100);
    c.add(ids(3, 3), 110); // timer anchored at the first add
    EXPECT_EQ(c.deadline(), 116u);
}

TEST(Repacker, FlushAllDrains)
{
    PartialWarpCollector c;
    c.add(ids(0, 10), 100);
    auto warp = c.flushAll();
    EXPECT_EQ(warp.size(), 10u);
    EXPECT_EQ(c.pendingCount(), 0u);
    EXPECT_TRUE(c.flushAll().empty());
}

TEST(Repacker, TwoFullWarpsFromLargeAdd)
{
    RepackerConfig cfg;
    cfg.capacity = 64;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 31), 100);
    auto warps = c.add(ids(31, 33), 101);
    ASSERT_EQ(warps.size(), 2u);
    EXPECT_EQ(warps[0].size(), 32u);
    EXPECT_EQ(warps[1].size(), 32u);
}

TEST(Repacker, StatsCountEvents)
{
    RepackerConfig cfg;
    cfg.timeout = 8;
    PartialWarpCollector c(cfg);
    c.add(ids(0, 32), 100);
    c.add(ids(32, 4), 110);
    c.flushIfExpired(200);
    EXPECT_EQ(c.stats().get("full_warps_formed"), 1u);
    EXPECT_EQ(c.stats().get("timeout_flushes"), 1u);
    EXPECT_EQ(c.stats().get("rays_collected"), 36u);
}

} // namespace
} // namespace rtp
