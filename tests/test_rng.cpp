/** @file PCG32 RNG tests. */

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rtp {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU32() == b.nextU32())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(123, 1), b(123, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU32() == b.nextU32())
            same++;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, FloatRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, RangeRespected)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextRange(-2.5f, 7.5f);
        EXPECT_GE(f, -2.5f);
        EXPECT_LT(f, 7.5f);
    }
}

TEST(Rng, BoundedRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
    EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, RoughUniformityOfFloats)
{
    Rng rng(10);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        buckets[static_cast<int>(rng.nextFloat() * 10)]++;
    for (int b = 0; b < 10; ++b)
        EXPECT_NEAR(buckets[b], n / 10, n / 100);
}

} // namespace
} // namespace rtp
