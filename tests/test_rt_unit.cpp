/** @file RT unit cycle-model tests (Section 5.1). */

#include <gtest/gtest.h>

#include <stdexcept>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "gpu/config.hpp"
#include "rtunit/rt_unit.hpp"
#include "scene/registry.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    MemoryConfig mem_cfg;
    MemorySystem mem;

    explicit Rig(SceneId id = SceneId::Sibenik, float detail = 0.05f)
        : scene(makeScene(id, detail)), mem(mem_cfg, 1)
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
    }
};

std::vector<Ray>
aoLikeRays(const Rig &rig, int n, std::uint64_t seed)
{
    Rng rng(seed);
    Aabb b = rig.bvh.sceneBounds();
    std::vector<Ray> rays;
    for (int i = 0; i < n; ++i) {
        Ray r;
        r.origin = {rng.nextRange(b.lo.x, b.hi.x),
                    rng.nextRange(b.lo.y, b.hi.y),
                    rng.nextRange(b.lo.z, b.hi.z)};
        r.dir = normalize(Vec3{rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1)} +
                          Vec3(1e-3f));
        r.tMax = b.diagonal() * 0.3f;
        r.kind = RayKind::Occlusion;
        rays.push_back(r);
    }
    return rays;
}

void
runToCompletion(RtUnit &rt)
{
    while (!rt.finished())
        rt.step();
}

std::vector<std::uint32_t>
iota(std::size_t n)
{
    std::vector<std::uint32_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint32_t>(i);
    return v;
}

TEST(RtUnit, EmptyEventQueueFailsLoudly)
{
    // Regression: nextEventCycle()/step() were guarded only by assert,
    // which compiles out in release builds — reading the empty event
    // queue was undefined behaviour and an infinite loop in the global
    // event loop. They must throw instead.
    Rig rig;
    RtUnitConfig cfg;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    EXPECT_FALSE(rt.hasEvents());
    EXPECT_THROW(rt.nextEventCycle(), std::logic_error);
    EXPECT_THROW(rt.step(), std::logic_error);
}

TEST(RtUnit, HasEventsTracksLifecycle)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 64, 7);
    RtUnitConfig cfg;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    EXPECT_FALSE(rt.hasEvents());
    rt.submit(rays, iota(rays.size()));
    EXPECT_TRUE(rt.hasEvents());
    while (!rt.finished()) {
        // The event loop contract: an unfinished unit always has a
        // pending event; nextEventCycle is safe exactly then.
        ASSERT_TRUE(rt.hasEvents());
        rt.step();
    }
}

TEST(RtUnit, BaselineMatchesReferenceHits)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 600, 1);
    RtUnitConfig cfg;
    cfg.repackEnabled = false;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    for (std::size_t i = 0; i < rays.size(); ++i) {
        bool ref =
            traverseAnyHit(rig.bvh, rig.scene.mesh.triangles(), rays[i])
                .hit;
        EXPECT_EQ(ref, rt.results()[i].hit) << "ray " << i;
    }
    EXPECT_EQ(rt.stats().get("rays_completed"), rays.size());
    EXPECT_GT(rt.completionCycle(), 0u);
}

TEST(RtUnit, PredictorPreservesCorrectness)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 600, 2);
    SimConfig sim = SimConfig::proposed();
    RayPredictor pred(sim.predictor, rig.bvh);
    RtUnitConfig cfg = sim.rt;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              &pred);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    for (std::size_t i = 0; i < rays.size(); ++i) {
        bool ref =
            traverseAnyHit(rig.bvh, rig.scene.mesh.triangles(), rays[i])
                .hit;
        EXPECT_EQ(ref, rt.results()[i].hit) << "ray " << i;
    }
}

TEST(RtUnit, PredictionFlagsConsistent)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 800, 3);
    SimConfig sim = SimConfig::proposed();
    RayPredictor pred(sim.predictor, rig.bvh);
    RtUnit rt(sim.rt, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              &pred);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    std::uint64_t predicted = 0, verified = 0, mispredicted = 0;
    for (const RayResult &r : rt.results()) {
        if (r.predicted)
            predicted++;
        if (r.verified)
            verified++;
        if (r.mispredicted)
            mispredicted++;
        // A verified or mispredicted ray must have been predicted.
        EXPECT_LE(r.verified + r.mispredicted, 1);
        if (r.verified || r.mispredicted) {
            EXPECT_TRUE(r.predicted);
        }
        // Occlusion rays: verified implies hit.
        if (r.verified) {
            EXPECT_TRUE(r.hit);
        }
    }
    EXPECT_EQ(predicted, rt.stats().get("rays_predicted"));
    EXPECT_EQ(verified, rt.stats().get("rays_verified"));
    EXPECT_EQ(mispredicted, rt.stats().get("rays_mispredicted"));
    EXPECT_EQ(predicted, verified + mispredicted);
}

TEST(RtUnit, ClosestHitRaysMatchReference)
{
    Rig rig;
    Rng rng(4);
    Aabb b = rig.bvh.sceneBounds();
    std::vector<Ray> rays;
    for (int i = 0; i < 300; ++i) {
        Ray r;
        r.origin = {rng.nextRange(b.lo.x, b.hi.x),
                    rng.nextRange(b.lo.y, b.hi.y),
                    rng.nextRange(b.lo.z, b.hi.z)};
        r.dir = normalize(Vec3{rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1)} +
                          Vec3(1e-3f));
        r.kind = RayKind::Secondary;
        rays.push_back(r);
    }
    SimConfig sim = SimConfig::proposed();
    RayPredictor pred(sim.predictor, rig.bvh);
    RtUnit rt(sim.rt, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              &pred);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    for (std::size_t i = 0; i < rays.size(); ++i) {
        HitRecord ref = traverseClosestHit(
            rig.bvh, rig.scene.mesh.triangles(), rays[i]);
        EXPECT_EQ(ref.hit, rt.results()[i].hit) << "ray " << i;
        if (ref.hit)
            EXPECT_NEAR(ref.t, rt.results()[i].t, 1e-3f) << "ray " << i;
    }
}

TEST(RtUnit, EmptySubmission)
{
    Rig rig;
    RtUnitConfig cfg;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit({}, {});
    EXPECT_TRUE(rt.finished());
}

TEST(RtUnit, PartialWarpSubmission)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 7, 5); // less than one warp
    RtUnitConfig cfg;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    EXPECT_EQ(rt.stats().get("rays_completed"), 7u);
}

TEST(RtUnit, MemoryAccessesAccounted)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 320, 6);
    RtUnitConfig cfg;
    cfg.repackEnabled = false;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    // Post-merge requests never exceed pre-merge fetches.
    EXPECT_LE(rt.stats().get("mem_node_accesses"),
              rt.stats().get("ray_node_fetches"));
    EXPECT_GT(rt.stats().get("ray_node_fetches"), 0u);
    EXPECT_GT(rt.stats().get("warp_merged_requests"), 0u);
}

TEST(RtUnit, StackSpillsChargedForDeepScenes)
{
    Rig rig(SceneId::CrytekSponza, 0.1f);
    auto rays = aoLikeRays(rig, 640, 7);
    RtUnitConfig cfg;
    cfg.stackEntries = 4; // tiny hardware stack forces spills
    cfg.repackEnabled = false;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    EXPECT_GT(rt.stats().get("stack_spills"), 0u);
    EXPECT_GT(rt.stats().get("mem_stack_accesses"), 0u);
}

TEST(RtUnit, SimtEfficiencyInUnitRange)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 640, 8);
    RtUnitConfig cfg;
    RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
              nullptr);
    rt.submit(rays, iota(rays.size()));
    runToCompletion(rt);
    EXPECT_GT(rt.simtEfficiency(), 0.0);
    EXPECT_LE(rt.simtEfficiency(), 1.0);
}

TEST(RtUnit, RepackedWarpsFormOnlyWithPredictor)
{
    Rig rig;
    auto rays = aoLikeRays(rig, 640, 9);
    {
        RtUnitConfig cfg;
        cfg.repackEnabled = true;
        RtUnit rt(cfg, rig.bvh, rig.scene.mesh.triangles(), rig.mem, 0,
                  nullptr);
        rt.submit(rays, iota(rays.size()));
        runToCompletion(rt);
        EXPECT_EQ(rt.stats().get("repacked_warps"), 0u);
    }
    {
        SimConfig sim = SimConfig::proposed();
        MemorySystem mem2(MemoryConfig{}, 1);
        RayPredictor pred(sim.predictor, rig.bvh);
        RtUnit rt(sim.rt, rig.bvh, rig.scene.mesh.triangles(), mem2, 0,
                  &pred);
        rt.submit(rays, iota(rays.size()));
        runToCompletion(rt);
        EXPECT_GT(rt.stats().get("repacked_warps"), 0u);
    }
}

} // namespace
} // namespace rtp
