/** @file Scene registry / generator tests (Table 1 scenes). */

#include <gtest/gtest.h>

#include "scene/registry.hpp"

namespace rtp {
namespace {

TEST(SceneRegistry, SevenScenesInTableOrder)
{
    const auto &ids = allSceneIds();
    ASSERT_EQ(ids.size(), 7u);
    EXPECT_EQ(sceneShortName(ids[0]), "SB");
    EXPECT_EQ(sceneShortName(ids[1]), "SP");
    EXPECT_EQ(sceneShortName(ids[2]), "LE");
    EXPECT_EQ(sceneShortName(ids[3]), "LR");
    EXPECT_EQ(sceneShortName(ids[4]), "FR");
    EXPECT_EQ(sceneShortName(ids[5]), "BI");
    EXPECT_EQ(sceneShortName(ids[6]), "CK");
}

/** Parameterised over all scenes at a small detail. */
class SceneGenTest : public ::testing::TestWithParam<SceneId>
{
};

TEST_P(SceneGenTest, ProducesGeometryWithFiniteBounds)
{
    Scene s = makeScene(GetParam(), 0.05f);
    EXPECT_GT(s.mesh.size(), 100u);
    Aabb b = s.mesh.bounds();
    EXPECT_FALSE(b.empty());
    EXPECT_GT(b.diagonal(), 1.0f);
    EXPECT_LT(b.diagonal(), 1000.0f);
    for (const auto &t : s.mesh.triangles()) {
        for (const Vec3 *v : {&t.v0, &t.v1, &t.v2}) {
            EXPECT_TRUE(std::isfinite(v->x));
            EXPECT_TRUE(std::isfinite(v->y));
            EXPECT_TRUE(std::isfinite(v->z));
        }
    }
}

TEST_P(SceneGenTest, CameraSitsInsideSceneBounds)
{
    Scene s = makeScene(GetParam(), 0.05f);
    Aabb b = s.mesh.bounds();
    // Allow slight slack: cameras sit inside the room shells.
    Aabb grown = b;
    grown.lo -= Vec3(1.0f);
    grown.hi += Vec3(1.0f);
    EXPECT_TRUE(grown.contains(s.camera.position()));
}

TEST_P(SceneGenTest, DetailScalesTriangleCount)
{
    Scene coarse = makeScene(GetParam(), 0.04f);
    Scene fine = makeScene(GetParam(), 0.16f);
    // 4x detail should give noticeably more triangles (allowing for
    // fixed-count objects and floors at tessellation minimums).
    EXPECT_GT(fine.mesh.size(), coarse.mesh.size() * 2);
}

TEST_P(SceneGenTest, DeterministicAcrossCalls)
{
    Scene a = makeScene(GetParam(), 0.05f);
    Scene b = makeScene(GetParam(), 0.05f);
    ASSERT_EQ(a.mesh.size(), b.mesh.size());
    for (std::size_t i = 0; i < a.mesh.size(); i += 97)
        EXPECT_EQ(a.mesh.triangles()[i].v0,
                  b.mesh.triangles()[i].v0);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneGenTest,
                         ::testing::ValuesIn(allSceneIds()),
                         [](const auto &info) {
                             return sceneShortName(info.param);
                         });

TEST(SceneRegistry, FullDetailApproximatesPaperCounts)
{
    // Spot-check two scenes at detail 1.0 (the others are covered by the
    // Table 1 bench); keep this test modest so the suite stays fast.
    Scene sb = makeScene(SceneId::Sibenik, 1.0f);
    EXPECT_GT(sb.mesh.size(), sb.paperTriangles * 0.6);
    EXPECT_LT(sb.mesh.size(), sb.paperTriangles * 1.5);
    Scene fr = makeScene(SceneId::FireplaceRoom, 1.0f);
    EXPECT_GT(fr.mesh.size(), fr.paperTriangles * 0.6);
    EXPECT_LT(fr.mesh.size(), fr.paperTriangles * 1.5);
}

TEST(SceneRegistry, PaperMetadataPopulated)
{
    for (SceneId id : allSceneIds()) {
        Scene s = makeScene(id, 0.03f);
        EXPECT_GE(s.paperTriangles, 75000u);
        EXPECT_GE(s.paperBvhDepth, 22);
        EXPECT_LE(s.paperBvhDepth, 27);
        EXPECT_FALSE(s.name.empty());
    }
}

} // namespace
} // namespace rtp
