/**
 * @file
 * Tests for SimService (src/service/): the multi-tenant job server's
 * determinism contract (results byte-identical to direct
 * Simulation::run, including warm shared-state sequences), admission
 * control, fair scheduling, cancellation, shutdown, warm-state
 * eviction, and the PredictorSet clone/reset/snapshot lifecycle the
 * warm registry is built on.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bvh/builder.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"
#include "service/sim_service.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    RayBatch ao;

    Rig() : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 32;
        cfg.height = 32;
        cfg.samplesPerPixel = 2;
        cfg.viewportFraction = 0.3f;
        ao = generateAoRays(scene, bvh, cfg);
    }
};

Rig &
rig()
{
    static Rig r;
    return r;
}

/** A request against the shared rig; warm sharing on by default. */
JobRequest
makeRequest(const std::string &tenant = "t")
{
    JobRequest req;
    req.tenant = tenant;
    req.sceneKey = "rig/FR";
    req.bvh = &rig().bvh;
    req.triangles = &rig().scene.mesh.triangles();
    req.rays = &rig().ao.rays;
    req.config = SimConfig::proposed();
    return req;
}

/** Single-worker, single-sim-thread config (deterministic & fast). */
ServiceConfig
smallService(bool paused = false, std::size_t max_queued = 64)
{
    ServiceConfig sc;
    sc.workers = 1;
    sc.simThreads = 1;
    sc.maxQueued = max_queued;
    sc.startPaused = paused;
    return sc;
}

// --- Determinism contract ------------------------------------------------

TEST(Service, ColdResultMatchesDirectRun)
{
    SimResult direct = Simulation(SimConfig::proposed(), rig().bvh,
                                  rig().scene.mesh.triangles())
                           .run(rig().ao.rays);

    SimService service(smallService());
    JobRequest req = makeRequest();
    req.shareWarmState = false;
    Admission adm = service.submit(req);
    ASSERT_TRUE(adm.accepted) << adm.reason;
    JobOutcome out = service.wait(adm.id);

    ASSERT_EQ(out.state, JobState::Done) << out.error;
    EXPECT_EQ(out.result.toJson(), direct.toJson());
    EXPECT_FALSE(out.warmShared);
    EXPECT_EQ(out.startSeq, 1u);
    EXPECT_GE(out.serviceSeconds, 0.0);
}

TEST(Service, WarmSequenceMatchesSequentialBindRunLoop)
{
    // The canonical cross-frame pattern the warm registry models: one
    // PredictorSet carried across frames with preserved tables.
    constexpr int kJobs = 3;
    SimConfig cfg = SimConfig::proposed();
    std::vector<std::string> direct;
    {
        PredictorSet set;
        for (int i = 0; i < kJobs; ++i) {
            set.bind(cfg.predictor, cfg.numSms, rig().bvh,
                     /*preserve_state=*/true);
            direct.push_back(
                Simulation(cfg, rig().bvh,
                           rig().scene.mesh.triangles(), set)
                    .run(rig().ao.rays)
                    .toJson());
        }
    }
    // Trained state must actually matter, or this test proves nothing.
    ASSERT_NE(direct[0], direct[1]);

    SimService service(smallService());
    std::vector<JobId> ids;
    for (int i = 0; i < kJobs; ++i) {
        Admission adm = service.submit(makeRequest());
        ASSERT_TRUE(adm.accepted) << adm.reason;
        ids.push_back(adm.id);
    }
    for (int i = 0; i < kJobs; ++i) {
        JobOutcome out = service.wait(ids[static_cast<size_t>(i)]);
        ASSERT_EQ(out.state, JobState::Done) << out.error;
        EXPECT_EQ(out.result.toJson(), direct[static_cast<size_t>(i)])
            << "job " << i;
        EXPECT_TRUE(out.warmShared);
        EXPECT_EQ(out.warmHit, i > 0);
        if (i == 0)
            EXPECT_EQ(out.warmth, 0.0);
        else
            EXPECT_GT(out.warmth, 0.0);
    }
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.warm.misses, 1u);
    EXPECT_EQ(stats.warm.hits, static_cast<std::uint64_t>(kJobs - 1));
}

TEST(Service, ConcurrentSameKeyJobsMatchSequential)
{
    // Many workers, one tenant, one warm key: the exclusive per-key
    // lease plus per-tenant FIFO must serialise the jobs into exactly
    // the sequential order, byte for byte, no matter how many workers
    // race for them.
    constexpr int kJobs = 4;
    SimConfig cfg = SimConfig::proposed();
    std::vector<std::string> direct;
    {
        PredictorSet set;
        for (int i = 0; i < kJobs; ++i) {
            set.bind(cfg.predictor, cfg.numSms, rig().bvh,
                     /*preserve_state=*/true);
            direct.push_back(
                Simulation(cfg, rig().bvh,
                           rig().scene.mesh.triangles(), set)
                    .run(rig().ao.rays)
                    .toJson());
        }
    }

    ServiceConfig sc;
    sc.workers = 4;
    sc.simThreads = 1;
    sc.startPaused = true; // queue everything, then release at once
    SimService service(sc);
    std::vector<JobId> ids;
    for (int i = 0; i < kJobs; ++i) {
        Admission adm = service.submit(makeRequest());
        ASSERT_TRUE(adm.accepted) << adm.reason;
        ids.push_back(adm.id);
    }
    service.resume();
    for (int i = 0; i < kJobs; ++i) {
        JobOutcome out = service.wait(ids[static_cast<size_t>(i)]);
        ASSERT_EQ(out.state, JobState::Done) << out.error;
        EXPECT_EQ(out.result.toJson(), direct[static_cast<size_t>(i)])
            << "job " << i;
    }
}

// --- Admission control ---------------------------------------------------

TEST(Service, QueueFullRejectsWithReason)
{
    SimService service(smallService(/*paused=*/true,
                                    /*max_queued=*/2));
    Admission a = service.submit(makeRequest());
    Admission b = service.submit(makeRequest());
    Admission c = service.submit(makeRequest());
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    EXPECT_FALSE(c.accepted);
    EXPECT_NE(c.reason.find("queue full"), std::string::npos)
        << c.reason;
    EXPECT_EQ(service.stats().rejected, 1u);

    service.resume();
    EXPECT_EQ(service.wait(a.id).state, JobState::Done);
    EXPECT_EQ(service.wait(b.id).state, JobState::Done);
}

TEST(Service, MalformedAndShutDownSubmitsAreRejected)
{
    SimService service(smallService());
    JobRequest req = makeRequest();
    req.rays = nullptr;
    Admission adm = service.submit(req);
    EXPECT_FALSE(adm.accepted);
    EXPECT_NE(adm.reason.find("malformed"), std::string::npos)
        << adm.reason;

    JobRequest bad = makeRequest();
    bad.config.numSms = 0; // fails SimConfig::validate
    Admission adm2 = service.submit(bad);
    EXPECT_FALSE(adm2.accepted);
    EXPECT_NE(adm2.reason.find("invalid config"), std::string::npos)
        << adm2.reason;

    service.shutdown();
    Admission adm3 = service.submit(makeRequest());
    EXPECT_FALSE(adm3.accepted);
    EXPECT_NE(adm3.reason.find("shut down"), std::string::npos)
        << adm3.reason;
    EXPECT_EQ(service.stats().rejected, 3u);
}

// --- Scheduling ----------------------------------------------------------

TEST(Service, RoundRobinInterleavesTenants)
{
    SimService service(smallService(/*paused=*/true));
    std::vector<JobId> ids;
    // Queue a1 a2 b1 b2; round-robin must dispatch a1 b1 a2 b2.
    for (const char *tenant : {"a", "a", "b", "b"}) {
        JobRequest req = makeRequest(tenant);
        req.shareWarmState = false;
        Admission adm = service.submit(req);
        ASSERT_TRUE(adm.accepted) << adm.reason;
        ids.push_back(adm.id);
    }
    service.resume();
    std::vector<std::uint64_t> seq;
    for (JobId id : ids) {
        JobOutcome out = service.wait(id);
        ASSERT_EQ(out.state, JobState::Done) << out.error;
        seq.push_back(out.startSeq);
    }
    EXPECT_EQ(seq, (std::vector<std::uint64_t>{1, 3, 2, 4}));
}

// --- Cancellation and shutdown -------------------------------------------

TEST(Service, CancelQueuedJobAndDrain)
{
    SimService service(smallService(/*paused=*/true));
    Admission a = service.submit(makeRequest());
    Admission b = service.submit(makeRequest());
    ASSERT_TRUE(a.accepted && b.accepted);

    EXPECT_TRUE(service.cancel(b.id));
    EXPECT_FALSE(service.cancel(b.id)); // already cancelled
    EXPECT_FALSE(service.cancel(9999)); // unknown

    service.resume();
    service.drain();
    EXPECT_EQ(service.queuedCount(), 0u);
    EXPECT_EQ(service.runningCount(), 0u);

    EXPECT_EQ(service.wait(a.id).state, JobState::Done);
    JobOutcome cancelled = service.wait(b.id);
    EXPECT_EQ(cancelled.state, JobState::Cancelled);
    EXPECT_EQ(service.stats().cancelled, 1u);
    // Cancelling a finished job fails too.
    EXPECT_FALSE(service.cancel(a.id));
}

TEST(Service, ShutdownNowCancelsEverythingQueued)
{
    SimService service(smallService(/*paused=*/true));
    std::vector<JobId> ids;
    for (int i = 0; i < 3; ++i) {
        Admission adm = service.submit(makeRequest());
        ASSERT_TRUE(adm.accepted);
        ids.push_back(adm.id);
    }
    service.shutdownNow();
    for (JobId id : ids)
        EXPECT_EQ(service.wait(id).state, JobState::Cancelled);
    EXPECT_EQ(service.stats().cancelled, 3u);
}

TEST(Service, WaitCollectsExactlyOnce)
{
    SimService service(smallService());
    JobRequest req = makeRequest();
    req.shareWarmState = false;
    Admission adm = service.submit(req);
    ASSERT_TRUE(adm.accepted);
    EXPECT_EQ(service.wait(adm.id).state, JobState::Done);
    EXPECT_THROW(service.wait(adm.id), std::invalid_argument);
    EXPECT_THROW(service.wait(123456), std::invalid_argument);
}

// --- Warm-state eviction -------------------------------------------------

TEST(Service, EvictionDropsWarmStateForQueuedJob)
{
    SimConfig cfg = SimConfig::proposed();
    SimService service(smallService());

    // Train the key, then evict it while the follow-up job waits in
    // the paused queue: that job must start cold, not warm.
    Admission first = service.submit(makeRequest());
    ASSERT_TRUE(first.accepted);
    JobOutcome warm1 = service.wait(first.id);
    ASSERT_EQ(warm1.state, JobState::Done) << warm1.error;

    service.pause();
    Admission second = service.submit(makeRequest());
    ASSERT_TRUE(second.accepted);
    EXPECT_TRUE(service.evictWarm("rig/FR", cfg));
    EXPECT_FALSE(service.evictWarm("rig/FR", cfg));     // already gone
    EXPECT_FALSE(service.evictWarm("no-such-key", cfg)); // unknown
    service.resume();

    JobOutcome out = service.wait(second.id);
    ASSERT_EQ(out.state, JobState::Done) << out.error;
    EXPECT_FALSE(out.warmHit); // cold again after eviction
    EXPECT_EQ(out.result.toJson(), warm1.result.toJson());
    EXPECT_EQ(service.stats().warm.evictions, 1u);
}

// --- Job envelope --------------------------------------------------------

TEST(Service, JobEnvelopeJsonIsVersionedAndEmbedsTheResult)
{
    SimService service(smallService());
    JobRequest req = makeRequest();
    Admission adm = service.submit(req);
    ASSERT_TRUE(adm.accepted);
    JobOutcome out = service.wait(adm.id);
    ASSERT_EQ(out.state, JobState::Done) << out.error;

    std::string json = out.toJson();
    EXPECT_EQ(json.find("{\"schema_version\":1,\"job_id\":"), 0u)
        << json;
    EXPECT_NE(json.find("\"tenant\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"state\":\"done\""), std::string::npos);
    EXPECT_NE(json.find("\"warm_shared\":true"), std::string::npos);
    // The embedded result is byte-identical to SimResult::toJson.
    EXPECT_NE(json.find("\"result\":" + out.result.toJson()),
              std::string::npos);
}

// --- PredictorSet lifecycle (what the warm registry is built on) ---------

TEST(PredictorSetLifecycle, SnapshotCloneAndReset)
{
    SimConfig cfg = SimConfig::proposed();
    PredictorSet set;
    set.bind(cfg.predictor, cfg.numSms, rig().bvh);
    PredictorSetStats cold = set.snapshotStats();
    EXPECT_EQ(cold.validEntries, 0u);
    EXPECT_GT(cold.capacity, 0u);
    EXPECT_EQ(cold.warmth(), 0.0);

    Simulation(cfg, rig().bvh, rig().scene.mesh.triangles(), set)
        .run(rig().ao.rays);
    PredictorSetStats trained = set.snapshotStats();
    EXPECT_GT(trained.validEntries, 0u);
    EXPECT_GT(trained.warmth(), 0.0);
    EXPECT_LE(trained.warmth(), 1.0);

    // clone() is a deep copy: resetting the original must not drain
    // the clone's tables.
    PredictorSet copy = set.clone();
    EXPECT_EQ(copy.snapshotStats().validEntries,
              trained.validEntries);
    set.reset();
    EXPECT_EQ(set.snapshotStats().validEntries, 0u);
    EXPECT_EQ(copy.snapshotStats().validEntries,
              trained.validEntries);

    // A cloned set behaves like the original: rebinding with
    // preserved state and running yields the warm-sequence result.
    PredictorSet reference;
    reference.bind(cfg.predictor, cfg.numSms, rig().bvh);
    Simulation(cfg, rig().bvh, rig().scene.mesh.triangles(),
               reference)
        .run(rig().ao.rays);
    reference.bind(cfg.predictor, cfg.numSms, rig().bvh,
                   /*preserve_state=*/true);
    SimResult expect =
        Simulation(cfg, rig().bvh, rig().scene.mesh.triangles(),
                   reference)
            .run(rig().ao.rays);
    copy.bind(cfg.predictor, cfg.numSms, rig().bvh,
              /*preserve_state=*/true);
    SimResult got =
        Simulation(cfg, rig().bvh, rig().scene.mesh.triangles(), copy)
            .run(rig().ao.rays);
    EXPECT_EQ(got.toJson(), expect.toJson());
}

} // namespace
} // namespace rtp
