/** @file Shadow-ray generator tests. */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "gpu/simulator.hpp"
#include "rays/raygen.hpp"

namespace rtp {
namespace {

struct Fixture
{
    Scene scene;
    Bvh bvh;
    Fixture() : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
    }
};

Fixture &
fx()
{
    static Fixture f;
    return f;
}

TEST(ShadowRays, OnePerPrimaryHit)
{
    RayGenConfig cfg;
    cfg.width = 24;
    cfg.height = 24;
    RayBatch batch = generateShadowRays(fx().scene, fx().bvh, cfg);
    EXPECT_EQ(batch.rays.size(), batch.primaryHits);
    EXPECT_GT(batch.primaryHits, 0u);
}

TEST(ShadowRays, PointTowardTheLight)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    Vec3 light{0.0f, 2.5f, 0.0f};
    RayBatch batch =
        generateShadowRays(fx().scene, fx().bvh, cfg, &light);
    for (const Ray &r : batch.rays) {
        EXPECT_EQ(r.kind, RayKind::Occlusion);
        // Ray direction must point at the light, segment ends there.
        Vec3 end = r.at(r.tMax);
        float remaining = length(light - end);
        float total = length(light - r.origin);
        EXPECT_LT(remaining, 0.02f * total + 1e-3f);
        EXPECT_NEAR(length(r.dir), 1.0f, 1e-4f);
    }
}

TEST(ShadowRays, SegmentBoundedByLightDistance)
{
    RayGenConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    Vec3 light{1.0f, 2.0f, 0.5f};
    RayBatch batch =
        generateShadowRays(fx().scene, fx().bvh, cfg, &light);
    for (const Ray &r : batch.rays) {
        float dist = length(light - r.origin);
        EXPECT_LE(r.tMax, dist);
        EXPECT_GT(r.tMax, 0.9f * dist);
    }
}

TEST(ShadowRays, DefaultLightNearCeiling)
{
    RayGenConfig cfg;
    cfg.width = 12;
    cfg.height = 12;
    RayBatch batch = generateShadowRays(fx().scene, fx().bvh, cfg);
    Aabb b = fx().bvh.sceneBounds();
    // Shadow rays from floor-ish surfaces toward a ceiling light point
    // mostly upward on average.
    double up = 0;
    for (const Ray &r : batch.rays)
        up += r.dir.y;
    EXPECT_GT(up / batch.rays.size(), -0.2);
    (void)b;
}

TEST(ShadowRays, PredictorWorksOnShadowWorkload)
{
    // Full viewport with a low light tucked behind furniture: plenty of
    // surfaces are occluded, so the predictor has hits to train on.
    RayGenConfig cfg;
    cfg.width = 128;
    cfg.height = 128;
    cfg.viewportFraction = 1.0f;
    Aabb b = fx().bvh.sceneBounds();
    Vec3 light = lerp(b.lo, b.hi, 0.25f);
    RayBatch batch =
        generateShadowRays(fx().scene, fx().bvh, cfg, &light);
    ASSERT_GT(batch.rays.size(), 0u);
    SimResult base = simulate(fx().bvh, fx().scene.mesh.triangles(),
                              batch.rays, SimConfig::baseline());
    SimResult pred = simulate(fx().bvh, fx().scene.mesh.triangles(),
                              batch.rays, SimConfig::proposed());
    // Correctness.
    for (std::size_t i = 0; i < batch.rays.size(); ++i) {
        bool ref = traverseAnyHit(fx().bvh,
                                  fx().scene.mesh.triangles(),
                                  batch.rays[i])
                       .hit;
        ASSERT_EQ(ref, pred.rayResults[i].hit);
    }
    // Shadow rays are occlusion rays: with real occlusion present the
    // predictor must train and engage.
    EXPECT_GT(pred.hitRate(), 0.05);
    EXPECT_GT(pred.predictedRate(), 0.1);
    (void)base;
}

} // namespace
} // namespace rtp
