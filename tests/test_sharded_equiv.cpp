/**
 * @file
 * Sharded event-loop equivalence tests (gpu/shard.hpp,
 * docs/performance.md): the sharded loop must be byte-identical to the
 * sequential reference loop in every observable output — SimResult
 * JSON, Chrome-trace bytes (including ring-wrap drop accounting),
 * telemetry timelines, and invariant-checker behaviour — at any worker
 * count, on every bundled scene.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "exp/workload.hpp"
#include "gpu/simulator.hpp"
#include "scene/registry.hpp"
#include "util/check.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace rtp {
namespace {

/** Small shared workload set: every bundled scene at low detail. */
WorkloadCache &
cache()
{
    static WorkloadCache *c = [] {
        WorkloadConfig wc;
        wc.detail = 0.05f;
        wc.raygen.width = 24;
        wc.raygen.height = 24;
        wc.raygen.samplesPerPixel = 1;
        wc.raygen.viewportFraction = 0.3f;
        return new WorkloadCache(wc);
    }();
    return *c;
}

/** Everything one observed run produces, as comparable bytes. */
struct RunOutputs
{
    std::string resultJson;
    std::string traceJson;
    std::uint64_t traceDropped = 0;
    std::string telemetryJson;
    std::uint64_t checksRun = 0;
};

/**
 * Run @p w under @p config at @p sim_threads with every observer
 * attached: a trace sink of @p trace_capacity events, a telemetry
 * sampler at @p telemetry_period, and the invariant checker.
 */
RunOutputs
runObserved(const Workload &w, SimConfig config,
            std::uint32_t sim_threads, std::size_t trace_capacity,
            Cycle telemetry_period)
{
    config.simThreads = sim_threads;
    TraceSink sink(trace_capacity);
    TelemetrySampler sampler(telemetry_period);
    InvariantChecker check;
    config.trace = &sink;
    config.telemetry = &sampler;
    config.check = &check;

    RunOutputs out;
    out.resultJson = Simulation(config, w.bvh,
                                w.scene.mesh.triangles())
                         .run(w.ao.rays)
                         .toJson();
    std::ostringstream trace_os;
    sink.writeChromeTrace(trace_os);
    out.traceJson = trace_os.str();
    out.traceDropped = sink.dropped();
    std::ostringstream telemetry_os;
    sampler.writeJson(telemetry_os);
    out.telemetryJson = telemetry_os.str();
    out.checksRun = check.checksRun();
    return out;
}

/** Bare run (no observers): just the SimResult JSON. */
std::string
runPlain(const Workload &w, SimConfig config, std::uint32_t sim_threads)
{
    config.simThreads = sim_threads;
    return Simulation(config, w.bvh, w.scene.mesh.triangles())
        .run(w.ao.rays)
        .toJson();
}

TEST(ShardedEquiv, EverySceneByteIdenticalAcrossWorkerCounts)
{
    // The headline contract on the paper-style configuration: every
    // bundled scene, sequential vs 2 and 4 workers, observers off.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    for (SceneId id : allSceneIds()) {
        const Workload &w = cache().get(id);
        const std::string seq = runPlain(w, config, 1);
        for (std::uint32_t threads : {2u, 4u})
            EXPECT_EQ(seq, runPlain(w, config, threads))
                << w.scene.shortName << " @ simThreads=" << threads;
    }
}

TEST(ShardedEquiv, BaselineConfigIdenticalAcrossWorkerCounts)
{
    // Predictor-off baseline exercises a different event mix (no
    // repacker, no predictor verify traffic) through the same seam.
    SimConfig config = SimConfig::baseline();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    const std::string seq = runPlain(w, config, 1);
    for (std::uint32_t threads : {2u, 4u})
        EXPECT_EQ(seq, runPlain(w, config, threads));
}

TEST(ShardedEquiv, ObserversByteIdenticalAcrossWorkerCounts)
{
    // Trace, telemetry, and checker attached: all three observer
    // outputs must match the sequential bytes exactly, and the checker
    // must run the same number of probes.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::Sibenik);
    const RunOutputs seq = runObserved(w, config, 1, 1u << 16, 128);
    for (std::uint32_t threads : {2u, 4u}) {
        const RunOutputs sharded =
            runObserved(w, config, threads, 1u << 16, 128);
        EXPECT_EQ(seq.resultJson, sharded.resultJson)
            << "simThreads=" << threads;
        EXPECT_EQ(seq.traceJson, sharded.traceJson)
            << "simThreads=" << threads;
        EXPECT_EQ(seq.telemetryJson, sharded.telemetryJson)
            << "simThreads=" << threads;
        EXPECT_EQ(seq.checksRun, sharded.checksRun)
            << "simThreads=" << threads;
    }
}

TEST(ShardedEquiv, TraceRingWrapAndDropsIdentical)
{
    // A deliberately tiny ring forces wrap-around and drops; the merge
    // into the real sink must reproduce the sequential loop's exact
    // retention window and drop count, not just the event multiset.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::CrytekSponza);
    const RunOutputs seq = runObserved(w, config, 1, 64, 256);
    ASSERT_GT(seq.traceDropped, 0u)
        << "capacity 64 was expected to overflow; grow the workload";
    for (std::uint32_t threads : {2u, 4u}) {
        const RunOutputs sharded =
            runObserved(w, config, threads, 64, 256);
        EXPECT_EQ(seq.traceJson, sharded.traceJson)
            << "simThreads=" << threads;
        EXPECT_EQ(seq.traceDropped, sharded.traceDropped)
            << "simThreads=" << threads;
    }
}

TEST(ShardedEquiv, DirectDramPathIdentical)
{
    // l2Enabled=false routes L1 misses straight to DRAM — the other
    // branch of the shared-seam gate.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    config.memory.l2Enabled = false;
    const Workload &w = cache().get(SceneId::Sibenik);
    const std::string seq = runPlain(w, config, 1);
    for (std::uint32_t threads : {2u, 4u})
        EXPECT_EQ(seq, runPlain(w, config, threads));
}

TEST(ShardedEquiv, WorkerCountClampsToNumSms)
{
    // More workers than SMs must clamp (numSms=2 -> 2 workers) and a
    // single-SM config must fall back to the sequential loop; both stay
    // byte-identical.
    SimConfig two = SimConfig::proposed();
    two.numSms = 2;
    SimConfig one = SimConfig::proposed();
    one.numSms = 1;
    const Workload &w = cache().get(SceneId::FireplaceRoom);
    EXPECT_EQ(runPlain(w, two, 1), runPlain(w, two, 8));
    EXPECT_EQ(runPlain(w, one, 1), runPlain(w, one, 8));
}

TEST(ShardedEquiv, RepeatedRunsOnOneSimulationStayIdentical)
{
    // run() must leave no residue: a sharded run sandwiched between
    // sequential runs on the same Simulation object changes nothing.
    SimConfig config = SimConfig::proposed();
    config.numSms = 4;
    const Workload &w = cache().get(SceneId::Sibenik);
    config.simThreads = 1;
    Simulation seq(config, w.bvh, w.scene.mesh.triangles());
    config.simThreads = 4;
    Simulation sharded(config, w.bvh, w.scene.mesh.triangles());
    const std::string a = seq.run(w.ao.rays).toJson();
    const std::string b = sharded.run(w.ao.rays).toJson();
    const std::string c = seq.run(w.ao.rays).toJson();
    const std::string d = sharded.run(w.ao.rays).toJson();
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(a, d);
}

} // namespace
} // namespace rtp
