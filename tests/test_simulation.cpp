/**
 * @file
 * Tests for the Simulation facade, PredictorSet, and
 * SimConfig::validate().
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "bvh/builder.hpp"
#include "gpu/frame_simulator.hpp"
#include "gpu/simulator.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    RayBatch ao;

    Rig()
        : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 32;
        cfg.height = 32;
        cfg.samplesPerPixel = 2;
        cfg.viewportFraction = 0.3f;
        ao = generateAoRays(scene, bvh, cfg);
    }
};

Rig &
rig()
{
    static Rig r;
    return r;
}

// --- Facade behaviour ----------------------------------------------------

TEST(Simulation, FacadeMatchesFreeFunction)
{
    for (const SimConfig &cfg :
         {SimConfig::baseline(), SimConfig::proposed()}) {
        SimResult direct =
            Simulation(cfg, rig().bvh, rig().scene.mesh.triangles())
                .run(rig().ao.rays);
        SimResult wrapped = simulate(
            rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays, cfg);
        EXPECT_EQ(direct.toJson(), wrapped.toJson());
    }
}

TEST(Simulation, RepeatedRunsAreIndependent)
{
    // Self-contained mode: every run starts from cold state, including
    // owned predictors, so run N is byte-identical to run 1.
    Simulation sim(SimConfig::proposed(), rig().bvh,
                   rig().scene.mesh.triangles());
    SimResult a = sim.run(rig().ao.rays);
    SimResult b = sim.run(rig().ao.rays);
    EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(Simulation, PredictorSetMatchesFrameSimulator)
{
    SimConfig cfg = SimConfig::proposed();

    FrameSimulator frames(cfg, /*preserve_state=*/true);
    SimResult f1 = frames.runFrame(rig().bvh,
                                   rig().scene.mesh.triangles(),
                                   rig().ao.rays);
    SimResult f2 = frames.runFrame(rig().bvh,
                                   rig().scene.mesh.triangles(),
                                   rig().ao.rays);

    // The same two frames, driven through the facade by hand.
    PredictorSet set;
    Simulation sim(cfg, rig().bvh, rig().scene.mesh.triangles(), set);
    set.bind(cfg.predictor, cfg.numSms, rig().bvh, true);
    SimResult m1 = sim.run(rig().ao.rays);
    set.bind(cfg.predictor, cfg.numSms, rig().bvh, true);
    SimResult m2 = sim.run(rig().ao.rays);

    EXPECT_EQ(f1.toJson(), m1.toJson());
    EXPECT_EQ(f2.toJson(), m2.toJson());
}

TEST(Simulation, PredictorSetCarriesTrainedState)
{
    SimConfig cfg = SimConfig::proposed();
    PredictorSet set;
    Simulation sim(cfg, rig().bvh, rig().scene.mesh.triangles(), set);

    set.bind(cfg.predictor, cfg.numSms, rig().bvh, true);
    SimResult cold = sim.run(rig().ao.rays);
    set.bind(cfg.predictor, cfg.numSms, rig().bvh, true);
    SimResult warm = sim.run(rig().ao.rays);

    // A table trained by the first run predicts rays from cycle 0 of
    // the second, instead of warming up from empty.
    EXPECT_GT(warm.stats.get("rays_predicted"),
              cold.stats.get("rays_predicted"));

    // Rebinding with preserve_state=false drops the training (and, as
    // with any bind, the per-run stats): the next run is cold again.
    set.bind(cfg.predictor, cfg.numSms, rig().bvh, false);
    SimResult recold = sim.run(rig().ao.rays);
    EXPECT_EQ(cold.toJson(), recold.toJson());
}

// --- SimConfig::validate() ----------------------------------------------

TEST(SimConfigValidate, AcceptsStockConfigs)
{
    EXPECT_NO_THROW(SimConfig::baseline().validate());
    EXPECT_NO_THROW(SimConfig::proposed().validate());
    EXPECT_NO_THROW(SimConfig::proposed().validate(rig().bvh));
}

TEST(SimConfigValidate, RejectsZeroSms)
{
    SimConfig c = SimConfig::baseline();
    c.numSms = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroWarpSize)
{
    SimConfig c = SimConfig::baseline();
    c.rt.warpSize = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroMaxWarps)
{
    SimConfig c = SimConfig::baseline();
    c.rt.maxWarps = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroStackEntries)
{
    SimConfig c = SimConfig::baseline();
    c.rt.stackEntries = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroL1Ports)
{
    SimConfig c = SimConfig::baseline();
    c.rt.l1PortsPerCycle = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroL1LineBytes)
{
    SimConfig c = SimConfig::baseline();
    c.memory.l1.lineBytes = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsL1SmallerThanOneLine)
{
    SimConfig c = SimConfig::baseline();
    c.memory.l1.sizeBytes = c.memory.l1.lineBytes - 1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroL2LineBytes)
{
    SimConfig c = SimConfig::baseline();
    c.memory.l2.lineBytes = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsL2SmallerThanOneLine)
{
    SimConfig c = SimConfig::baseline();
    c.memory.l2.sizeBytes = c.memory.l2.lineBytes - 1;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroDramBanks)
{
    SimConfig c = SimConfig::baseline();
    c.memory.dram.numBanks = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsEmptyPredictorTable)
{
    SimConfig c = SimConfig::proposed();
    c.predictor.table.numEntries = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, RejectsZeroPredictorPorts)
{
    SimConfig c = SimConfig::proposed();
    c.predictor.accessPorts = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SimConfigValidate, PredictorKnobsIgnoredWhenDisabled)
{
    SimConfig c = SimConfig::baseline();
    c.predictor.table.numEntries = 0;
    c.predictor.accessPorts = 0;
    EXPECT_NO_THROW(c.validate());
}

TEST(SimConfigValidate, RejectsGoUpLevelBeyondBvhDepth)
{
    SimConfig c = SimConfig::proposed();
    c.predictor.goUpLevel = rig().bvh.maxDepth() + 1;
    EXPECT_NO_THROW(c.validate()); // config-only overload can't know
    EXPECT_THROW(c.validate(rig().bvh), std::invalid_argument);
}

TEST(SimConfigValidate, SimulationConstructorValidates)
{
    SimConfig c = SimConfig::baseline();
    c.numSms = 0;
    EXPECT_THROW(
        Simulation(c, rig().bvh, rig().scene.mesh.triangles()),
        std::invalid_argument);

    SimConfig d = SimConfig::proposed();
    d.predictor.goUpLevel = rig().bvh.maxDepth() + 1;
    EXPECT_THROW(
        Simulation(d, rig().bvh, rig().scene.mesh.triangles()),
        std::invalid_argument);
}

} // namespace
} // namespace rtp
