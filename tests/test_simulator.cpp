/** @file Multi-SM simulation driver tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "gpu/simulator.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace rtp {
namespace {

struct Rig
{
    Scene scene;
    Bvh bvh;
    RayBatch ao;

    Rig()
        : scene(makeScene(SceneId::FireplaceRoom, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 32;
        cfg.height = 32;
        cfg.samplesPerPixel = 2;
        cfg.viewportFraction = 0.3f;
        ao = generateAoRays(scene, bvh, cfg);
    }
};

Rig &
rig()
{
    static Rig r;
    return r;
}

TEST(Simulator, AllRaysComplete)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::baseline());
    EXPECT_EQ(r.stats.get("rays_completed"), rig().ao.rays.size());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.rayResults.size(), rig().ao.rays.size());
}

TEST(Simulator, ResultsMatchReferenceBothConfigs)
{
    for (const SimConfig &cfg :
         {SimConfig::baseline(), SimConfig::proposed()}) {
        SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                               rig().ao.rays, cfg);
        for (std::size_t i = 0; i < rig().ao.rays.size(); ++i) {
            bool ref = traverseAnyHit(rig().bvh,
                                      rig().scene.mesh.triangles(),
                                      rig().ao.rays[i])
                           .hit;
            ASSERT_EQ(ref, r.rayResults[i].hit) << "ray " << i;
        }
    }
}

TEST(Simulator, DeterministicRepeatRuns)
{
    SimConfig cfg = SimConfig::proposed();
    SimResult a = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, cfg);
    SimResult b = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.get("rays_verified"), b.stats.get("rays_verified"));
    EXPECT_EQ(a.totalMemAccesses(), b.totalMemAccesses());
}

TEST(Simulator, TracingDoesNotPerturbSimulation)
{
    // Acceptance contract of the observability layer: enabling a trace
    // sink must not change simulated cycles, statistics, or per-ray
    // results — emission is a pure observer.
    for (const SimConfig &base :
         {SimConfig::baseline(), SimConfig::proposed()}) {
        SimResult plain = simulate(
            rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
            base);
        SimConfig traced_cfg = base;
        TraceSink sink;
        traced_cfg.trace = &sink;
        SimResult traced = simulate(
            rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
            traced_cfg);
        EXPECT_GT(sink.size(), 0u);
        EXPECT_EQ(plain.cycles, traced.cycles);
        EXPECT_EQ(plain.toJson(), traced.toJson());
        for (std::size_t i = 0; i < rig().ao.rays.size(); ++i) {
            ASSERT_EQ(plain.rayResults[i].hit, traced.rayResults[i].hit)
                << "ray " << i;
        }
    }
}

TEST(Simulator, TelemetryDoesNotPerturbSimulation)
{
    // Same contract as tracing: an attached TelemetrySampler must not
    // change cycles, statistics, or per-ray results. Byte-compare the
    // stats JSON so even counter bookkeeping perturbation is caught.
    for (const SimConfig &base :
         {SimConfig::baseline(), SimConfig::proposed()}) {
        SimResult plain = simulate(
            rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
            base);
        SimConfig sampled_cfg = base;
        TelemetrySampler sampler(64);
        sampled_cfg.telemetry = &sampler;
        SimResult sampled = simulate(
            rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
            sampled_cfg);
        EXPECT_GT(sampler.records().size(), 2u);
        EXPECT_EQ(plain.cycles, sampled.cycles);
        EXPECT_EQ(plain.toJson(), sampled.toJson());
        for (std::size_t i = 0; i < rig().ao.rays.size(); ++i) {
            ASSERT_EQ(plain.rayResults[i].hit,
                      sampled.rayResults[i].hit)
                << "ray " << i;
        }
    }
}

TEST(Simulator, TelemetryTimelineIsMonotoneAndPopulated)
{
    // Samples are taken every `period` cycles in order, cumulative
    // counters never decrease, and the final finish() record lands at
    // the end-of-run cycle.
    SimConfig cfg = SimConfig::proposed();
    TelemetrySampler sampler(128);
    cfg.telemetry = &sampler;
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, cfg);
    const auto &recs = sampler.records();
    ASSERT_GT(recs.size(), 2u);
    EXPECT_EQ(sampler.droppedRecords(), 0u);
    EXPECT_EQ(recs.back().cycle, r.cycles);
    std::uint64_t prev_cycle = 0;
    std::uint64_t prev_completed = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (i > 0) {
            EXPECT_GT(recs[i].cycle, prev_cycle) << "record " << i;
        }
        prev_cycle = recs[i].cycle;
        ASSERT_EQ(recs[i].sms.size(), cfg.numSms);
        std::uint64_t completed = 0;
        for (const TelemetrySmSample &sm : recs[i].sms)
            completed += sm.rays_completed;
        EXPECT_GE(completed, prev_completed) << "record " << i;
        prev_completed = completed;
    }
    // By the final record every ray has been counted as completed.
    EXPECT_EQ(prev_completed, rig().ao.rays.size());
}

TEST(Simulator, TraceCoversComponentTaxonomy)
{
    SimConfig cfg = SimConfig::proposed();
    TraceSink sink;
    cfg.trace = &sink;
    simulate(rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
             cfg);
    std::uint64_t warps = 0, fetches = 0, cache = 0, lookups = 0;
    for (const TraceEvent &ev : sink.snapshot()) {
        switch (ev.kind) {
        case TraceEventKind::WarpDispatch:
        case TraceEventKind::WarpComplete: warps++; break;
        case TraceEventKind::NodeFetchIssue:
        case TraceEventKind::NodeFetchReady: fetches++; break;
        case TraceEventKind::CacheHit:
        case TraceEventKind::CacheMiss: cache++; break;
        case TraceEventKind::PredictorLookup: lookups++; break;
        default: break;
        }
    }
    EXPECT_GT(warps, 0u);
    EXPECT_GT(fetches, 0u);
    EXPECT_GT(cache, 0u);
    EXPECT_GT(lookups, 0u);
}

TEST(Simulator, MultiSmDistributesWork)
{
    SimConfig cfg = SimConfig::baseline();
    cfg.numSms = 4;
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, cfg);
    EXPECT_EQ(r.stats.get("rays_completed"), rig().ao.rays.size());
    // More SMs -> fewer cycles for the same workload (more parallelism).
    SimConfig one = cfg;
    one.numSms = 1;
    SimResult r1 = simulate(rig().bvh, rig().scene.mesh.triangles(),
                            rig().ao.rays, one);
    EXPECT_LT(r.cycles, r1.cycles);
}

TEST(Simulator, RateHelpersInRange)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::proposed());
    EXPECT_GE(r.predictedRate(), 0.0);
    EXPECT_LE(r.predictedRate(), 1.0);
    EXPECT_GE(r.verifiedRate(), 0.0);
    EXPECT_LE(r.verifiedRate(), r.predictedRate());
    EXPECT_GE(r.hitRate(), 0.0);
    EXPECT_LE(r.hitRate(), 1.0);
    // Verified rays are a subset of hit rays.
    EXPECT_LE(r.verifiedRate(), r.hitRate() + 1e-9);
}

TEST(Simulator, BaselineHasNoPredictorActivity)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::baseline());
    EXPECT_EQ(r.stats.get("rays_predicted"), 0u);
    EXPECT_EQ(r.stats.get("lookups"), 0u);
    EXPECT_EQ(r.predictedRate(), 0.0);
}

TEST(Simulator, MemStatsPopulated)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(),
                           rig().ao.rays, SimConfig::baseline());
    EXPECT_GT(r.memStats.get("l1.hits") + r.memStats.get("l1.misses"),
              0u);
    EXPECT_GT(r.postMergeAccesses(), 0u);
    EXPECT_LE(r.postMergeAccesses(), r.totalMemAccesses() * 3);
}

TEST(Simulator, SharedPredictorStatsMergedOnce)
{
    // Regression: runEventLoop merged predictors[s]->stats() once per
    // SM, so a predictor object shared between SMs had its counters
    // double-counted in the result.
    SimConfig cfg = SimConfig::proposed();
    cfg.numSms = 2;
    RayPredictor shared(cfg.predictor, rig().bvh);
    SimResult r = simulateWithPredictors(
        rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays, cfg,
        {&shared, &shared});
    ASSERT_GT(shared.stats().get("lookups"), 0u);
    // The merged result must carry the predictor's counters exactly
    // once, not once per SM that points at it.
    EXPECT_EQ(r.stats.get("lookups"), shared.stats().get("lookups"));
    EXPECT_EQ(r.stats.get("trained"), shared.stats().get("trained"));
}

TEST(Simulator, DistinctPredictorStatsStillSum)
{
    SimConfig cfg = SimConfig::proposed();
    cfg.numSms = 2;
    RayPredictor a(cfg.predictor, rig().bvh);
    RayPredictor b(cfg.predictor, rig().bvh);
    SimResult r = simulateWithPredictors(
        rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays, cfg,
        {&a, &b});
    EXPECT_EQ(r.stats.get("lookups"),
              a.stats().get("lookups") + b.stats().get("lookups"));
}

TEST(Simulator, TelemetryHeaderReportsSmCountWithoutRecords)
{
    // Regression: the JSON header used to derive num_sms from the
    // captured records (falling back to the probe list, which finish()
    // clears), so a run too short to record any sample — or one whose
    // record store was full — reported "num_sms":0.
    TelemetrySampler sampler(64, /*max_records=*/0);
    SimConfig cfg = SimConfig::proposed();
    cfg.telemetry = &sampler;
    simulate(rig().bvh, rig().scene.mesh.triangles(), rig().ao.rays,
             cfg);
    EXPECT_TRUE(sampler.records().empty());
    EXPECT_GT(sampler.droppedRecords(), 0u);
    std::ostringstream os;
    sampler.writeJson(os);
    EXPECT_NE(os.str().find("\"num_sms\":" +
                            std::to_string(cfg.numSms)),
              std::string::npos);
}

TEST(Simulator, EmptyWorkload)
{
    SimResult r = simulate(rig().bvh, rig().scene.mesh.triangles(), {},
                           SimConfig::baseline());
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.stats.get("rays_completed"), 0u);
}

} // namespace
} // namespace rtp
