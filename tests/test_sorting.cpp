/** @file Morton ray sorting tests. */

#include <gtest/gtest.h>

#include "rays/sorting.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

std::vector<Ray>
randomRays(int n, std::uint64_t seed, const Aabb &bounds)
{
    Rng rng(seed);
    std::vector<Ray> rays;
    for (int i = 0; i < n; ++i) {
        Ray r;
        r.origin = {rng.nextRange(bounds.lo.x, bounds.hi.x),
                    rng.nextRange(bounds.lo.y, bounds.hi.y),
                    rng.nextRange(bounds.lo.z, bounds.hi.z)};
        r.dir = normalize(Vec3{rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1),
                               rng.nextRange(-1, 1)} +
                          Vec3(1e-3f));
        rays.push_back(r);
    }
    return rays;
}

TEST(Sorting, KeysAreSortedAfterSort)
{
    Aabb bounds{{0, 0, 0}, {10, 10, 10}};
    auto rays = randomRays(500, 1, bounds);
    sortRaysMorton(rays, bounds);
    for (std::size_t i = 1; i < rays.size(); ++i) {
        EXPECT_LE(rayMortonKey(rays[i - 1], bounds),
                  rayMortonKey(rays[i], bounds));
    }
}

TEST(Sorting, PreservesMultiset)
{
    Aabb bounds{{0, 0, 0}, {10, 10, 10}};
    auto rays = randomRays(200, 2, bounds);
    double sum_before = 0;
    for (const Ray &r : rays)
        sum_before += r.origin.x + r.origin.y + r.origin.z + r.dir.x;
    sortRaysMorton(rays, bounds);
    double sum_after = 0;
    for (const Ray &r : rays)
        sum_after += r.origin.x + r.origin.y + r.origin.z + r.dir.x;
    EXPECT_NEAR(sum_before, sum_after, 1e-3);
}

TEST(Sorting, ImprovesNeighborCoherence)
{
    Aabb bounds{{0, 0, 0}, {10, 10, 10}};
    auto rays = randomRays(2000, 3, bounds);
    auto avg_neighbor_dist = [](const std::vector<Ray> &rs) {
        double acc = 0;
        for (std::size_t i = 1; i < rs.size(); ++i)
            acc += length(rs[i].origin - rs[i - 1].origin);
        return acc / (rs.size() - 1);
    };
    double before = avg_neighbor_dist(rays);
    sortRaysMorton(rays, bounds);
    double after = avg_neighbor_dist(rays);
    EXPECT_LT(after, before * 0.6);
}

TEST(Sorting, KeyRespectsQuantisation)
{
    Aabb bounds{{0, 0, 0}, {32, 32, 32}};
    Ray a, b;
    a.origin = {1.0f, 1.0f, 1.0f};
    b.origin = {1.4f, 1.2f, 1.3f}; // same 1-unit cell (32 levels)
    a.dir = b.dir = {0, 0, 1};
    EXPECT_EQ(rayMortonKey(a, bounds), rayMortonKey(b, bounds));
    b.origin = {30.0f, 30.0f, 30.0f};
    EXPECT_NE(rayMortonKey(a, bounds), rayMortonKey(b, bounds));
}

TEST(Sorting, EmptyAndSingle)
{
    Aabb bounds{{0, 0, 0}, {1, 1, 1}};
    std::vector<Ray> empty;
    sortRaysMorton(empty, bounds); // must not crash
    std::vector<Ray> one = randomRays(1, 4, bounds);
    sortRaysMorton(one, bounds);
    EXPECT_EQ(one.size(), 1u);
}

} // namespace
} // namespace rtp
