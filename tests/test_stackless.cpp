/** @file Restart-trail (stackless) traversal tests. */

#include <gtest/gtest.h>

#include "bvh/builder.hpp"
#include "bvh/traversal.hpp"
#include "scene/registry.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

std::vector<Triangle>
randomTriangles(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Triangle> tris;
    for (int i = 0; i < n; ++i) {
        Vec3 c{rng.nextRange(-10, 10), rng.nextRange(-10, 10),
               rng.nextRange(-10, 10)};
        tris.emplace_back(c, c + Vec3{rng.nextRange(0.1f, 2), 0, 0},
                          c + Vec3{0, rng.nextRange(0.1f, 2), 0});
    }
    return tris;
}

Ray
randomRay(Rng &rng, float tmax)
{
    Ray r;
    r.origin = {rng.nextRange(-12, 12), rng.nextRange(-12, 12),
                rng.nextRange(-12, 12)};
    r.dir = normalize(Vec3{rng.nextRange(-1, 1), rng.nextRange(-1, 1),
                           rng.nextRange(-1, 1)} +
                      Vec3(1e-4f));
    r.tMax = tmax;
    r.kind = RayKind::Occlusion;
    return r;
}

TEST(RestartTrail, MatchesStackTraversalProperty)
{
    auto tris = randomTriangles(800, 200);
    Bvh bvh = BvhBuilder().build(tris);
    Rng rng(201);
    int hits = 0;
    for (int i = 0; i < 600; ++i) {
        Ray ray = randomRay(rng, rng.nextRange(1.0f, 40.0f));
        bool stack = traverseAnyHit(bvh, tris, ray).hit;
        bool trail = traverseAnyHitRestartTrail(bvh, tris, ray).hit;
        ASSERT_EQ(stack, trail) << "ray " << i;
        if (stack)
            hits++;
    }
    EXPECT_GT(hits, 30);
}

TEST(RestartTrail, MatchesOnSceneWorkload)
{
    Scene s = makeScene(SceneId::FireplaceRoom, 0.05f);
    Bvh bvh = BvhBuilder().build(s.mesh.triangles());
    Rng rng(202);
    Aabb b = bvh.sceneBounds();
    for (int i = 0; i < 200; ++i) {
        Ray ray;
        ray.origin = {rng.nextRange(b.lo.x, b.hi.x),
                      rng.nextRange(b.lo.y, b.hi.y),
                      rng.nextRange(b.lo.z, b.hi.z)};
        ray.dir = normalize(Vec3{rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1),
                                 rng.nextRange(-1, 1)} +
                            Vec3(1e-4f));
        ray.tMax = b.diagonal() * 0.3f;
        EXPECT_EQ(traverseAnyHit(bvh, s.mesh.triangles(), ray).hit,
                  traverseAnyHitRestartTrail(bvh, s.mesh.triangles(),
                                             ray)
                      .hit)
            << "ray " << i;
    }
}

TEST(RestartTrail, ReportsValidHitPrim)
{
    auto tris = randomTriangles(300, 203);
    Bvh bvh = BvhBuilder().build(tris);
    Rng rng(204);
    for (int i = 0; i < 200; ++i) {
        Ray ray = randomRay(rng, 30.0f);
        HitRecord rec = traverseAnyHitRestartTrail(bvh, tris, ray);
        if (rec.hit) {
            ASSERT_LT(rec.prim, tris.size());
            HitRecord direct;
            EXPECT_TRUE(
                intersectRayTriangle(ray, tris[rec.prim], direct));
        }
    }
}

TEST(RestartTrail, RefetchesMoreNodesThanStack)
{
    // The stack-memory vs refetch trade-off: restarts revisit interior
    // nodes, so fetch counts must be >= the stack traversal's on
    // misses (which explore everything).
    auto tris = randomTriangles(500, 205);
    Bvh bvh = BvhBuilder().build(tris);
    Rng rng(206);
    std::uint64_t stack_fetches = 0, trail_fetches = 0;
    for (int i = 0; i < 200; ++i) {
        Ray ray = randomRay(rng, 15.0f);
        TraversalStats ss, ts;
        traverseAnyHit(bvh, tris, ray, &ss);
        traverseAnyHitRestartTrail(bvh, tris, ray, &ts);
        stack_fetches += ss.nodesFetched;
        trail_fetches += ts.nodesFetched;
    }
    EXPECT_GE(trail_fetches, stack_fetches);
}

TEST(RestartTrail, MissOutsideScene)
{
    auto tris = randomTriangles(100, 207);
    Bvh bvh = BvhBuilder().build(tris);
    Ray ray;
    ray.origin = {100, 100, 100};
    ray.dir = {1, 0, 0};
    EXPECT_FALSE(traverseAnyHitRestartTrail(bvh, tris, ray).hit);
}

} // namespace
} // namespace rtp
