/** @file StatGroup tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"

namespace rtp {
namespace {

TEST(Stats, DefaultsToZero)
{
    StatGroup g;
    EXPECT_EQ(g.get("missing"), 0u);
    EXPECT_EQ(g.getScalar("missing"), 0.0);
}

TEST(Stats, IncAccumulates)
{
    StatGroup g;
    g.inc("a");
    g.inc("a", 4);
    EXPECT_EQ(g.get("a"), 5u);
}

TEST(Stats, SetOverwrites)
{
    StatGroup g;
    g.set("x", 1.5);
    g.set("x", 2.5);
    EXPECT_EQ(g.getScalar("x"), 2.5);
}

TEST(Stats, MergeAddsCountersAndSumsScalars)
{
    // Regression: merge() used to overwrite scalar entries, so merging
    // per-SM groups silently kept only the last SM's scalar values.
    StatGroup a, b;
    a.inc("n", 3);
    a.set("s", 1.0);
    b.inc("n", 4);
    b.inc("m", 1);
    b.set("s", 9.0);
    a.merge(b);
    EXPECT_EQ(a.get("n"), 7u);
    EXPECT_EQ(a.get("m"), 1u);
    EXPECT_EQ(a.getScalar("s"), 10.0);
}

TEST(Stats, MergeRespectsMaxPolicy)
{
    // Shared/peak quantities (the one DRAM's busy-bank average) merge
    // by max so aggregating per-SM views does not double them.
    StatGroup a, b;
    a.set("dram.avg_busy_banks", 3.5, ScalarMerge::Max);
    b.set("dram.avg_busy_banks", 2.0, ScalarMerge::Max);
    a.merge(b);
    EXPECT_EQ(a.getScalar("dram.avg_busy_banks"), 3.5);

    // Merging into an empty group adopts the value and its policy.
    StatGroup c;
    c.merge(a);
    c.merge(b);
    EXPECT_EQ(c.getScalar("dram.avg_busy_banks"), 3.5);
}

TEST(Stats, MergeIsOrderIndependentForScalars)
{
    StatGroup x, y, ab, ba;
    x.set("e", 2.0);
    y.set("e", 5.0);
    ab.merge(x);
    ab.merge(y);
    ba.merge(y);
    ba.merge(x);
    EXPECT_EQ(ab.getScalar("e"), ba.getScalar("e"));
    EXPECT_EQ(ab.getScalar("e"), 7.0);
}

TEST(Stats, ToJsonIsSortedAndStable)
{
    StatGroup g;
    g.inc("zeta", 2);
    g.inc("alpha", 1);
    g.set("rate", 0.5);
    EXPECT_EQ(g.toJson(),
              "{\"schema_version\":1,"
              "\"counters\":{\"alpha\":1,\"zeta\":2},"
              "\"scalars\":{\"rate\":0.5}}");
    StatGroup empty;
    EXPECT_EQ(empty.toJson(),
              "{\"schema_version\":1,\"counters\":{},\"scalars\":{}}");
}

TEST(Stats, ClearRemovesEverything)
{
    StatGroup g;
    g.inc("a", 10);
    g.set("b", 1.0);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.scalars().empty());
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g;
    g.inc("zeta", 1);
    g.inc("alpha", 2);
    std::ostringstream os;
    g.dump(os, "p.");
    std::string out = os.str();
    EXPECT_NE(out.find("p.alpha = 2"), std::string::npos);
    EXPECT_NE(out.find("p.zeta = 1"), std::string::npos);
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, TracksMinMaxMeanExactly)
{
    Histogram h;
    h.add(0);
    h.add(7);
    h.add(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 107u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_NEAR(h.mean(), 107.0 / 3.0, 1e-12);
}

TEST(Histogram, PercentilesAreOrderedAndClamped)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    double p50 = h.percentile(50.0);
    double p90 = h.percentile(90.0);
    double p99 = h.percentile(99.0);
    // Log2 buckets give bounded (factor-of-two) error, and percentiles
    // must be monotone and clamped to the recorded range.
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, 250.0);
    EXPECT_LE(p50, 1000.0);
    EXPECT_LE(p99, 1000.0);
    EXPECT_EQ(h.percentile(0.0), 1.0);    // clamps to min
    EXPECT_EQ(h.percentile(100.0), 1000.0); // clamps to max
}

TEST(Histogram, SingleValuePercentilesAreExact)
{
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.add(64);
    EXPECT_EQ(h.percentile(1.0), 64.0);
    EXPECT_EQ(h.percentile(50.0), 64.0);
    EXPECT_EQ(h.percentile(99.0), 64.0);
}

TEST(Histogram, OneSamplePercentilesAreThatSample)
{
    // A single recorded value must be returned for every percentile,
    // including the p=0 / p=100 extremes and out-of-range requests.
    Histogram h;
    h.add(37);
    EXPECT_EQ(h.percentile(0.0), 37.0);
    EXPECT_EQ(h.percentile(50.0), 37.0);
    EXPECT_EQ(h.percentile(100.0), 37.0);
    EXPECT_EQ(h.percentile(-5.0), 37.0);
    EXPECT_EQ(h.percentile(250.0), 37.0);
}

TEST(Histogram, EmptyPercentileIsZeroForAnyP)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(100.0), 0.0);
    EXPECT_EQ(h.percentile(-1.0), 0.0);
    EXPECT_EQ(h.percentile(1e9), 0.0);
}

TEST(Histogram, AllSamplesInOneBucketStayWithinRange)
{
    // Values 64..127 share a log2 bucket. The histogram cannot resolve
    // order inside the bucket, but every percentile must stay within
    // the recorded [min, max] range and be monotone in p.
    Histogram h;
    for (std::uint64_t v = 64; v < 128; ++v)
        h.add(v);
    double prev = 0.0;
    for (double p : {0.0, 10.0, 50.0, 90.0, 100.0}) {
        double q = h.percentile(p);
        EXPECT_GE(q, 64.0) << "p=" << p;
        EXPECT_LE(q, 127.0) << "p=" << p;
        EXPECT_GE(q, prev) << "p=" << p;
        prev = q;
    }
    // p=0 interpolates near the low edge of the bucket (not exactly
    // min, since the bucket cannot resolve order); p=100 clamps to max.
    EXPECT_NEAR(h.percentile(0.0), 64.0, 1.0);
    EXPECT_EQ(h.percentile(100.0), 127.0);
}

TEST(Histogram, MergeAddsBucketwise)
{
    Histogram a, b;
    a.add(1);
    a.add(2);
    b.add(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 1003u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, MergePreservesPercentiles)
{
    // Merging two histograms must give the same percentiles as adding
    // every sample to one histogram directly — merge is bucketwise, so
    // the results are bit-identical, not merely close.
    Histogram combined, left, right;
    for (std::uint64_t v = 1; v <= 500; ++v) {
        combined.add(v);
        left.add(v);
    }
    for (std::uint64_t v = 501; v <= 1000; ++v) {
        combined.add(v);
        right.add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), combined.count());
    EXPECT_EQ(left.sum(), combined.sum());
    EXPECT_EQ(left.min(), combined.min());
    EXPECT_EQ(left.max(), combined.max());
    for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_EQ(left.percentile(p), combined.percentile(p))
            << "p=" << p;
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram h, empty;
    h.add(5);
    h.add(9);
    h.merge(empty);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 9u);
    Histogram h2;
    h2.merge(h);
    EXPECT_EQ(h2.count(), 2u);
    EXPECT_EQ(h2.min(), 5u);
    EXPECT_EQ(h2.max(), 9u);
    EXPECT_EQ(h2.percentile(50.0), h.percentile(50.0));
}

TEST(Stats, AddSampleCreatesHistogram)
{
    StatGroup g;
    EXPECT_EQ(g.histogram("lat"), nullptr);
    g.addSample("lat", 5);
    g.addSample("lat", 9);
    const Histogram *h = g.histogram("lat");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_EQ(h->sum(), 14u);
}

TEST(Stats, MergeCombinesHistograms)
{
    StatGroup a, b;
    a.addSample("lat", 1);
    b.addSample("lat", 3);
    b.addSample("other", 7);
    a.merge(b);
    ASSERT_NE(a.histogram("lat"), nullptr);
    EXPECT_EQ(a.histogram("lat")->count(), 2u);
    ASSERT_NE(a.histogram("other"), nullptr);
    EXPECT_EQ(a.histogram("other")->count(), 1u);
}

TEST(Stats, ToJsonOmitsHistogramsWhenEmpty)
{
    // Histogram-free groups must serialise exactly as before this
    // field existed, keeping bench JSON byte-identical.
    StatGroup g;
    g.inc("a");
    EXPECT_EQ(g.toJson(),
              "{\"schema_version\":1,\"counters\":{\"a\":1},"
              "\"scalars\":{}}");
    g.addSample("lat", 2);
    EXPECT_NE(g.toJson().find("\"histograms\":{\"lat\":{"),
              std::string::npos);
}

} // namespace
} // namespace rtp
