/** @file StatGroup tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"

namespace rtp {
namespace {

TEST(Stats, DefaultsToZero)
{
    StatGroup g;
    EXPECT_EQ(g.get("missing"), 0u);
    EXPECT_EQ(g.getScalar("missing"), 0.0);
}

TEST(Stats, IncAccumulates)
{
    StatGroup g;
    g.inc("a");
    g.inc("a", 4);
    EXPECT_EQ(g.get("a"), 5u);
}

TEST(Stats, SetOverwrites)
{
    StatGroup g;
    g.set("x", 1.5);
    g.set("x", 2.5);
    EXPECT_EQ(g.getScalar("x"), 2.5);
}

TEST(Stats, MergeAddsCountersOverwritesScalars)
{
    StatGroup a, b;
    a.inc("n", 3);
    a.set("s", 1.0);
    b.inc("n", 4);
    b.inc("m", 1);
    b.set("s", 9.0);
    a.merge(b);
    EXPECT_EQ(a.get("n"), 7u);
    EXPECT_EQ(a.get("m"), 1u);
    EXPECT_EQ(a.getScalar("s"), 9.0);
}

TEST(Stats, ClearRemovesEverything)
{
    StatGroup g;
    g.inc("a", 10);
    g.set("b", 1.0);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.scalars().empty());
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g;
    g.inc("zeta", 1);
    g.inc("alpha", 2);
    std::ostringstream os;
    g.dump(os, "p.");
    std::string out = os.str();
    EXPECT_NE(out.find("p.alpha = 2"), std::string::npos);
    EXPECT_NE(out.find("p.zeta = 1"), std::string::npos);
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

} // namespace
} // namespace rtp
