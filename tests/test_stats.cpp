/** @file StatGroup tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"

namespace rtp {
namespace {

TEST(Stats, DefaultsToZero)
{
    StatGroup g;
    EXPECT_EQ(g.get("missing"), 0u);
    EXPECT_EQ(g.getScalar("missing"), 0.0);
}

TEST(Stats, IncAccumulates)
{
    StatGroup g;
    g.inc("a");
    g.inc("a", 4);
    EXPECT_EQ(g.get("a"), 5u);
}

TEST(Stats, SetOverwrites)
{
    StatGroup g;
    g.set("x", 1.5);
    g.set("x", 2.5);
    EXPECT_EQ(g.getScalar("x"), 2.5);
}

TEST(Stats, MergeAddsCountersAndSumsScalars)
{
    // Regression: merge() used to overwrite scalar entries, so merging
    // per-SM groups silently kept only the last SM's scalar values.
    StatGroup a, b;
    a.inc("n", 3);
    a.set("s", 1.0);
    b.inc("n", 4);
    b.inc("m", 1);
    b.set("s", 9.0);
    a.merge(b);
    EXPECT_EQ(a.get("n"), 7u);
    EXPECT_EQ(a.get("m"), 1u);
    EXPECT_EQ(a.getScalar("s"), 10.0);
}

TEST(Stats, MergeRespectsMaxPolicy)
{
    // Shared/peak quantities (the one DRAM's busy-bank average) merge
    // by max so aggregating per-SM views does not double them.
    StatGroup a, b;
    a.set("dram.avg_busy_banks", 3.5, ScalarMerge::Max);
    b.set("dram.avg_busy_banks", 2.0, ScalarMerge::Max);
    a.merge(b);
    EXPECT_EQ(a.getScalar("dram.avg_busy_banks"), 3.5);

    // Merging into an empty group adopts the value and its policy.
    StatGroup c;
    c.merge(a);
    c.merge(b);
    EXPECT_EQ(c.getScalar("dram.avg_busy_banks"), 3.5);
}

TEST(Stats, MergeIsOrderIndependentForScalars)
{
    StatGroup x, y, ab, ba;
    x.set("e", 2.0);
    y.set("e", 5.0);
    ab.merge(x);
    ab.merge(y);
    ba.merge(y);
    ba.merge(x);
    EXPECT_EQ(ab.getScalar("e"), ba.getScalar("e"));
    EXPECT_EQ(ab.getScalar("e"), 7.0);
}

TEST(Stats, ToJsonIsSortedAndStable)
{
    StatGroup g;
    g.inc("zeta", 2);
    g.inc("alpha", 1);
    g.set("rate", 0.5);
    EXPECT_EQ(g.toJson(),
              "{\"counters\":{\"alpha\":1,\"zeta\":2},"
              "\"scalars\":{\"rate\":0.5}}");
    StatGroup empty;
    EXPECT_EQ(empty.toJson(), "{\"counters\":{},\"scalars\":{}}");
}

TEST(Stats, ClearRemovesEverything)
{
    StatGroup g;
    g.inc("a", 10);
    g.set("b", 1.0);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_TRUE(g.counters().empty());
    EXPECT_TRUE(g.scalars().empty());
}

TEST(Stats, DumpIsPrefixedAndSorted)
{
    StatGroup g;
    g.inc("zeta", 1);
    g.inc("alpha", 2);
    std::ostringstream os;
    g.dump(os, "p.");
    std::string out = os.str();
    EXPECT_NE(out.find("p.alpha = 2"), std::string::npos);
    EXPECT_NE(out.find("p.zeta = 1"), std::string::npos);
    EXPECT_LT(out.find("alpha"), out.find("zeta"));
}

} // namespace
} // namespace rtp
