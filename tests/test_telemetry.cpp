/** @file TelemetrySampler unit tests (no simulation required: the
 *  sampler is exercised with empty probe sets, which is exactly the
 *  boundary/serialisation machinery integration tests cannot isolate).
 *  End-to-end sampling against a real run lives in test_simulator.cpp.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/telemetry.hpp"

namespace rtp {
namespace {

/** Attach with no SMs and no memory system: boundary logic and
 *  serialisation behave identically, records simply hold no sm rows. */
void
attachEmpty(TelemetrySampler &s)
{
    s.attach({}, nullptr);
}

TEST(Telemetry, ZeroPeriodThrows)
{
    EXPECT_THROW(TelemetrySampler(0), std::invalid_argument);
    EXPECT_NO_THROW(TelemetrySampler(1));
}

TEST(Telemetry, SampleUpToIsNoopWhenDetached)
{
    TelemetrySampler s(10);
    s.sampleUpTo(1000);
    EXPECT_TRUE(s.records().empty());
    EXPECT_FALSE(s.attached());
}

TEST(Telemetry, SamplesEveryPeriodBoundaryUpToCycle)
{
    TelemetrySampler s(10);
    attachEmpty(s);
    s.sampleUpTo(5); // before the first boundary
    EXPECT_TRUE(s.records().empty());
    s.sampleUpTo(10); // exactly on the boundary
    ASSERT_EQ(s.records().size(), 1u);
    EXPECT_EQ(s.records()[0].cycle, 10u);
    s.sampleUpTo(35); // catches up across skipped boundaries
    ASSERT_EQ(s.records().size(), 3u);
    EXPECT_EQ(s.records()[1].cycle, 20u);
    EXPECT_EQ(s.records()[2].cycle, 30u);
    s.sampleUpTo(35); // idempotent between boundaries
    EXPECT_EQ(s.records().size(), 3u);
}

TEST(Telemetry, FinishRecordsFinalCycleOnceAndDetaches)
{
    TelemetrySampler s(10);
    attachEmpty(s);
    s.sampleUpTo(20);
    s.finish(42); // off-period completion cycle
    ASSERT_EQ(s.records().size(), 3u);
    EXPECT_EQ(s.records().back().cycle, 42u);
    EXPECT_FALSE(s.attached());
    s.finish(99); // second finish is a no-op
    EXPECT_EQ(s.records().size(), 3u);
}

TEST(Telemetry, FinishOnBoundaryDoesNotDuplicate)
{
    TelemetrySampler s(10);
    attachEmpty(s);
    s.sampleUpTo(30);
    ASSERT_EQ(s.records().size(), 3u);
    s.finish(30); // cycle 30 was already sampled
    EXPECT_EQ(s.records().size(), 3u);
    EXPECT_EQ(s.records().back().cycle, 30u);
}

TEST(Telemetry, FullStoreDropsNewestAndCounts)
{
    TelemetrySampler s(1, /*max_records=*/3);
    attachEmpty(s);
    s.sampleUpTo(10);
    ASSERT_EQ(s.records().size(), 3u);
    // The warm-up prefix is kept; the 7 newest boundaries are dropped.
    EXPECT_EQ(s.records()[0].cycle, 1u);
    EXPECT_EQ(s.records()[2].cycle, 3u);
    EXPECT_EQ(s.droppedRecords(), 7u);
    s.finish(10); // the final sample is also dropped, but still counted
    EXPECT_EQ(s.records().size(), 3u);
    EXPECT_EQ(s.droppedRecords(), 8u);
}

TEST(Telemetry, ClearResetsRecordsAndBoundary)
{
    TelemetrySampler s(10);
    attachEmpty(s);
    s.sampleUpTo(30);
    s.finish(35);
    EXPECT_EQ(s.records().size(), 4u);
    s.clear();
    EXPECT_TRUE(s.records().empty());
    attachEmpty(s);
    s.sampleUpTo(10); // boundary restarts at the first period
    ASSERT_EQ(s.records().size(), 1u);
    EXPECT_EQ(s.records()[0].cycle, 10u);
}

TEST(Telemetry, FieldCataloguesAreNullTerminatedAndComplete)
{
    std::size_t n_sm = 0;
    for (const TelemetrySmField *f = telemetrySmFields(); f->name; ++f)
        n_sm++;
    std::size_t n_global = 0;
    for (const TelemetryGlobalField *f = telemetryGlobalFields();
         f->name; ++f)
        n_global++;
    EXPECT_EQ(n_sm, 20u);
    EXPECT_EQ(n_global, 10u);
}

TEST(Telemetry, JsonOutputParsesWithExpectedShape)
{
    TelemetrySampler s(16);
    attachEmpty(s);
    s.sampleUpTo(32);
    s.finish(40);
    std::ostringstream os;
    s.writeJson(os);
    std::string error;
    auto root = parseJson(os.str(), &error);
    ASSERT_TRUE(root.has_value()) << error;
    const JsonValue *t = root->find("telemetry");
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->numberAt("period"), 16.0);
    EXPECT_EQ(t->numberAt("num_sms"), 0.0);
    EXPECT_EQ(t->numberAt("dropped_records"), 0.0);
    const JsonValue *samples = t->find("samples");
    ASSERT_NE(samples, nullptr);
    ASSERT_TRUE(samples->isArray());
    ASSERT_EQ(samples->array.size(), 3u);
    EXPECT_EQ(samples->array[0].numberAt("cycle"), 16.0);
    EXPECT_EQ(samples->array[1].numberAt("cycle"), 32.0);
    EXPECT_EQ(samples->array[2].numberAt("cycle"), 40.0);
    // Every sample carries the full global counter catalogue.
    const JsonValue *global = samples->array[0].find("global");
    ASSERT_NE(global, nullptr);
    for (const TelemetryGlobalField *f = telemetryGlobalFields();
         f->name; ++f)
        EXPECT_NE(global->find(f->name), nullptr) << f->name;
}

TEST(Telemetry, CsvOutputIsLongFormat)
{
    TelemetrySampler s(8);
    attachEmpty(s);
    s.sampleUpTo(8);
    s.finish(8);
    std::ostringstream os;
    s.writeCsv(os);
    std::istringstream in(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "cycle,scope,counter,value");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        rows++;
        EXPECT_EQ(line.rfind("8,global,", 0), 0u) << line;
    }
    // One record, no SMs -> exactly the 10 global counters.
    EXPECT_EQ(rows, 10u);
}

} // namespace
} // namespace rtp
