/** @file TraceSink, Chrome-trace export, and JSON parser tests. */

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/trace.hpp"

namespace rtp {
namespace {

TraceEvent
ev(Cycle cycle, TraceEventKind kind, std::uint64_t id = 0,
   std::uint64_t arg = 0, Cycle dur = 0, std::uint16_t unit = 0,
   std::uint16_t aux = 0)
{
    return TraceEvent{cycle, dur, kind, unit, aux, id, arg};
}

TEST(TraceSink, PreservesEmissionOrder)
{
    TraceSink sink(16);
    sink.emit(ev(5, TraceEventKind::WarpDispatch, 1));
    sink.emit(ev(7, TraceEventKind::CacheMiss, 0x1000, 90));
    sink.emit(ev(9, TraceEventKind::WarpComplete, 1, 32, 100));
    ASSERT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.dropped(), 0u);
    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].cycle, 5u);
    EXPECT_EQ(events[0].kind, TraceEventKind::WarpDispatch);
    EXPECT_EQ(events[1].id, 0x1000u);
    EXPECT_EQ(events[1].arg, 90u);
    EXPECT_EQ(events[2].duration, 100u);
}

TEST(TraceSink, RingDropsOldestWhenFull)
{
    TraceSink sink(4);
    for (Cycle c = 0; c < 6; ++c)
        sink.emit(ev(c, TraceEventKind::CacheHit, c));
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.capacity(), 4u);
    EXPECT_EQ(sink.dropped(), 2u);
    auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest two (cycles 0, 1) were overwritten.
    EXPECT_EQ(events.front().cycle, 2u);
    EXPECT_EQ(events.back().cycle, 5u);
}

TEST(TraceSink, ClearKeepsDropCounter)
{
    TraceSink sink(2);
    for (Cycle c = 0; c < 3; ++c)
        sink.emit(ev(c, TraceEventKind::CacheHit));
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.dropped(), 1u);
    EXPECT_TRUE(sink.snapshot().empty());
}

TEST(TraceSink, KindNamesAreStableAndDistinct)
{
    const TraceEventKind kinds[] = {
        TraceEventKind::WarpDispatch,
        TraceEventKind::WarpComplete,
        TraceEventKind::NodeFetchIssue,
        TraceEventKind::NodeFetchReady,
        TraceEventKind::CacheHit,
        TraceEventKind::CacheMiss,
        TraceEventKind::CacheMshrMerge,
        TraceEventKind::CacheInflightBypass,
        TraceEventKind::DramAccess,
        TraceEventKind::PredictorLookup,
        TraceEventKind::PredictorTrain,
        TraceEventKind::PredictorVerify,
        TraceEventKind::PredictorMispredict,
        TraceEventKind::RepackCollect,
        TraceEventKind::RepackFlush,
    };
    std::set<std::string> names;
    for (TraceEventKind k : kinds) {
        std::string n = TraceSink::kindName(k);
        EXPECT_FALSE(n.empty());
        EXPECT_NE(n, "unknown");
        names.insert(n);
    }
    EXPECT_EQ(names.size(), std::size(kinds));
}

TEST(TraceSink, ChromeTraceIsValidJson)
{
    TraceSink sink(64);
    sink.emit(ev(10, TraceEventKind::WarpDispatch, 3, 32, 0, 1));
    sink.emit(ev(12, TraceEventKind::CacheMiss, 0x2000, 91, 0, 0, 1));
    sink.emit(ev(15, TraceEventKind::DramAccess, 0x2000, 2, 180, 5, 1));
    sink.emit(
        ev(40, TraceEventKind::PredictorMispredict, 7, 4, 25, 1));
    sink.emit(ev(90, TraceEventKind::WarpComplete, 3, 32, 80, 1));
    std::ostringstream os;
    sink.writeChromeTrace(os);

    std::string error;
    auto root = parseJson(os.str(), &error);
    ASSERT_TRUE(root.has_value()) << error;
    ASSERT_TRUE(root->isObject());
    const JsonValue *events = root->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t spans = 0, instants = 0, meta = 0;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            meta++;
            continue;
        }
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        ASSERT_NE(e.find("args"), nullptr);
        if (ph->str == "X") {
            spans++;
            EXPECT_GT(e.numberAt("dur"), 0.0);
        } else {
            EXPECT_EQ(ph->str, "i");
            instants++;
        }
    }
    EXPECT_EQ(spans, 3u);    // dram access, mispredict, warp span
    EXPECT_EQ(instants, 2u); // dispatch + miss
    EXPECT_GT(meta, 0u);     // process_name metadata present

    const JsonValue *other = root->find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->numberAt("buffered_events"), 5.0);
    EXPECT_EQ(other->numberAt("dropped_events"), 0.0);
}

TEST(TraceSink, CacheEventNamesFoldLevel)
{
    TraceSink sink(8);
    sink.emit(ev(1, TraceEventKind::CacheMiss, 0x100, 90, 0, 0, 1));
    sink.emit(ev(2, TraceEventKind::CacheHit, 0x100, 1, 0, 0, 2));
    std::ostringstream os;
    sink.writeChromeTrace(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"l1_miss\""), std::string::npos);
    EXPECT_NE(out.find("\"l2_hit\""), std::string::npos);
}

TEST(Json, ParsesScalarsArraysObjects)
{
    std::string error;
    auto v = parseJson(
        R"({"a":1.5,"b":[true,null,"x\nA"],"c":{"d":-2e3}})",
        &error);
    ASSERT_TRUE(v.has_value()) << error;
    EXPECT_EQ(v->numberAt("a"), 1.5);
    const JsonValue *b = v->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_EQ(b->array[1].type, JsonValue::Type::Null);
    EXPECT_EQ(b->array[2].str, "x\nA");
    const JsonValue *c = v->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->numberAt("d"), -2000.0);
}

TEST(Json, RejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(parseJson("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseJson("{\"a\":}", &error).has_value());
    EXPECT_FALSE(parseJson("[1,2,]", &error).has_value());
    EXPECT_FALSE(parseJson("{} trailing", &error).has_value());
    EXPECT_FALSE(parseJson("\"unterminated", &error).has_value());
    EXPECT_FALSE(parseJson("", &error).has_value());
}

TEST(Json, FindAndFallbacks)
{
    auto v = parseJson(R"({"s":"str","n":4})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("missing"), nullptr);
    EXPECT_EQ(v->numberAt("missing", 7.0), 7.0);
    EXPECT_EQ(v->stringAt("s"), "str");
    EXPECT_EQ(v->stringAt("n", "fb"), "fb"); // wrong type -> fallback
}

} // namespace
} // namespace rtp
