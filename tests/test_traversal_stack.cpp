/** @file Traversal stack (with spill window) tests. */

#include <gtest/gtest.h>

#include "rtunit/traversal_stack.hpp"

namespace rtp {
namespace {

TEST(TraversalStack, LifoOrder)
{
    TraversalStack s(8);
    s.push(1);
    s.push(2);
    s.push(3);
    EXPECT_EQ(s.pop(), 3u);
    EXPECT_EQ(s.pop(), 2u);
    EXPECT_EQ(s.pop(), 1u);
    EXPECT_FALSE(s.pop().has_value());
}

TEST(TraversalStack, EmptyAndSize)
{
    TraversalStack s(8);
    EXPECT_TRUE(s.empty());
    s.push(7);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.size(), 1u);
    s.clear();
    EXPECT_TRUE(s.empty());
}

TEST(TraversalStack, NoSpillWithinWindow)
{
    TraversalStack s(8);
    for (std::uint32_t i = 0; i < 8; ++i)
        s.push(i);
    EXPECT_EQ(s.takeSpillEvents(), 0u);
    EXPECT_EQ(s.spilledDepth(), 0u);
}

TEST(TraversalStack, SpillsBeyondWindow)
{
    TraversalStack s(8, 4);
    for (std::uint32_t i = 0; i < 9; ++i)
        s.push(i);
    EXPECT_EQ(s.takeSpillEvents(), 1u);
    EXPECT_EQ(s.spilledDepth(), 4u);
    EXPECT_EQ(s.totalSpills(), 1u);
}

TEST(TraversalStack, RefillOnDeepPop)
{
    TraversalStack s(8, 4);
    for (std::uint32_t i = 0; i < 9; ++i)
        s.push(i);
    s.takeSpillEvents();
    // Pop down through the hardware window (5 entries: 9 - 4 spilled).
    for (int i = 0; i < 5; ++i)
        s.pop();
    EXPECT_EQ(s.takeRefillEvents(), 0u);
    // Next pop must refill.
    EXPECT_EQ(s.pop(), 3u);
    EXPECT_EQ(s.takeRefillEvents(), 1u);
}

TEST(TraversalStack, ValuesSurviveSpillRoundTrip)
{
    TraversalStack s(4, 2);
    for (std::uint32_t i = 0; i < 20; ++i)
        s.push(i);
    for (int i = 19; i >= 0; --i)
        EXPECT_EQ(s.pop(), static_cast<std::uint32_t>(i));
    EXPECT_TRUE(s.empty());
}

TEST(TraversalStack, DeepTraversalSpillCount)
{
    TraversalStack s(8, 4);
    for (std::uint32_t i = 0; i < 32; ++i)
        s.push(i);
    // Every 4 pushes past the window spills once: (32-8)/4 = 6.
    EXPECT_EQ(s.totalSpills(), 6u);
}

TEST(TraversalStack, WindowSmallerThanSpillChunkStaysBounded)
{
    // Regression (found by tools/simfuzz): with a 2-entry window and
    // the default 4-entry spill chunk, spills used to transfer more
    // entries than were resident, pushing spilledDepth_ past the stack
    // size (hwResident() underflowed), and refills restored a full
    // chunk into a window that cannot hold one.
    TraversalStack s(2, 4);
    for (std::uint32_t i = 0; i < 64; ++i) {
        s.push(i);
        ASSERT_LE(s.hwResident(), s.hwCapacity()) << "push " << i;
        ASSERT_LE(s.spilledDepth(), s.size()) << "push " << i;
    }
    for (int i = 63; i >= 0; --i) {
        std::optional<std::uint32_t> top = s.pop();
        ASSERT_TRUE(top.has_value());
        ASSERT_EQ(*top, static_cast<std::uint32_t>(i));
        ASSERT_LE(s.hwResident(), s.hwCapacity()) << "pop " << i;
    }
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.spilledDepth(), 0u);
}

TEST(TraversalStack, SingleEntryWindowStillLifo)
{
    TraversalStack s(1, 4);
    for (std::uint32_t i = 0; i < 9; ++i)
        s.push(i);
    EXPECT_LE(s.hwResident(), 1u);
    for (int i = 8; i >= 0; --i)
        EXPECT_EQ(s.pop().value(), static_cast<std::uint32_t>(i));
    EXPECT_FALSE(s.pop().has_value());
}

} // namespace
} // namespace rtp
