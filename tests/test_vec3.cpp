/** @file Unit tests for Vec3. */

#include <gtest/gtest.h>

#include "geometry/vec3.hpp"
#include "util/rng.hpp"

namespace rtp {
namespace {

TEST(Vec3, ArithmeticBasics)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{4.0f, 5.0f, 6.0f};
    EXPECT_EQ(a + b, Vec3(5.0f, 7.0f, 9.0f));
    EXPECT_EQ(b - a, Vec3(3.0f, 3.0f, 3.0f));
    EXPECT_EQ(a * 2.0f, Vec3(2.0f, 4.0f, 6.0f));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_EQ(a * b, Vec3(4.0f, 10.0f, 18.0f));
    EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
    EXPECT_EQ(-a, Vec3(-1.0f, -2.0f, -3.0f));
}

TEST(Vec3, CompoundAssignment)
{
    Vec3 v{1.0f, 1.0f, 1.0f};
    v += Vec3{1.0f, 2.0f, 3.0f};
    EXPECT_EQ(v, Vec3(2.0f, 3.0f, 4.0f));
    v -= Vec3{1.0f, 1.0f, 1.0f};
    EXPECT_EQ(v, Vec3(1.0f, 2.0f, 3.0f));
    v *= 3.0f;
    EXPECT_EQ(v, Vec3(3.0f, 6.0f, 9.0f));
}

TEST(Vec3, IndexAccess)
{
    Vec3 v{7.0f, 8.0f, 9.0f};
    EXPECT_EQ(v[0], 7.0f);
    EXPECT_EQ(v[1], 8.0f);
    EXPECT_EQ(v[2], 9.0f);
    v[1] = 42.0f;
    EXPECT_EQ(v.y, 42.0f);
}

TEST(Vec3, DotAndCross)
{
    Vec3 x{1.0f, 0.0f, 0.0f};
    Vec3 y{0.0f, 1.0f, 0.0f};
    Vec3 z{0.0f, 0.0f, 1.0f};
    EXPECT_EQ(dot(x, y), 0.0f);
    EXPECT_EQ(cross(x, y), z);
    EXPECT_EQ(cross(y, z), x);
    EXPECT_EQ(cross(z, x), y);
    EXPECT_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0f);
}

TEST(Vec3, LengthAndNormalize)
{
    Vec3 v{3.0f, 4.0f, 0.0f};
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    EXPECT_FLOAT_EQ(lengthSquared(v), 25.0f);
    Vec3 n = normalize(v);
    EXPECT_NEAR(length(n), 1.0f, 1e-6f);
    EXPECT_NEAR(n.x, 0.6f, 1e-6f);
}

TEST(Vec3, MinMaxLerp)
{
    Vec3 a{1.0f, 5.0f, 3.0f};
    Vec3 b{2.0f, 4.0f, 6.0f};
    EXPECT_EQ(min(a, b), Vec3(1.0f, 4.0f, 3.0f));
    EXPECT_EQ(max(a, b), Vec3(2.0f, 5.0f, 6.0f));
    EXPECT_EQ(lerp(a, b, 0.0f), a);
    EXPECT_EQ(lerp(a, b, 1.0f), b);
    Vec3 mid = lerp(a, b, 0.5f);
    EXPECT_FLOAT_EQ(mid.x, 1.5f);
}

TEST(Vec3, CrossIsOrthogonalProperty)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Vec3 a{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Vec3 b{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Vec3 c = cross(a, b);
        EXPECT_NEAR(dot(c, a), 0.0f, 1e-3f);
        EXPECT_NEAR(dot(c, b), 0.0f, 1e-3f);
    }
}

TEST(Vec3, TriangleInequalityProperty)
{
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        Vec3 a{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        Vec3 b{rng.nextRange(-5, 5), rng.nextRange(-5, 5),
               rng.nextRange(-5, 5)};
        EXPECT_LE(length(a + b), length(a) + length(b) + 1e-4f);
    }
}

} // namespace
} // namespace rtp
