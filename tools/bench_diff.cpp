/**
 * @file
 * Perf-baseline regression gate: compare fresh bench JSON output
 * against committed baselines (bench/baselines/ in the repo).
 *
 * Usage:
 *   bench_diff [options] <baseline.json> <current.json>
 *   bench_diff [options] <baseline_dir>  <current_dir>
 *
 * In directory mode every *.json under <baseline_dir> is compared
 * against the identically named file under <current_dir>; a baseline
 * file with no current counterpart is a failure (the bench silently
 * disappeared). Files only present in <current_dir> are ignored, so
 * adding a bench does not require touching baselines in the same PR.
 *
 * Options (see util/bench_compare.hpp for the comparison rules):
 *   --rel-tol <x>         symmetric tolerance for deterministic
 *                         metrics (default 0.02 = 2%)
 *   --perf-tol <x>        one-sided slower-only tolerance for
 *                         throughput keys (default 0.25 = 25%)
 *   --skip-perf           ignore throughput keys entirely
 *   --include-histograms  also compare "histograms" subtrees
 *
 * Exits 0 when everything is within tolerance, 1 on regressions, 2 on
 * usage errors, 3 on unreadable or unparseable input. CI runs this
 * after the bench step and fails the job on exit 1.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/bench_compare.hpp"
#include "util/json.hpp"
#include "util/schema.hpp"

namespace {

namespace fs = std::filesystem;
using rtp::BenchDiffOptions;
using rtp::BenchViolation;
using rtp::JsonValue;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--rel-tol <x>] [--perf-tol <x>] "
                 "[--skip-perf] [--include-histograms] "
                 "<baseline.json|dir> <current.json|dir>\n",
                 argv0);
    return 2;
}

/** Parse @p path; on failure print a message and return nullopt. */
std::optional<JsonValue>
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    auto v = rtp::parseJson(buf.str(), &error);
    if (!v)
        std::fprintf(stderr, "bench_diff: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
    return v;
}

/** Compare one baseline/current file pair; print its violations.
 *  @return 0 pass, 1 violations, 3 bad input. */
int
compareFiles(const std::string &base_path,
             const std::string &cur_path, const BenchDiffOptions &opts)
{
    auto base = loadJson(base_path);
    auto cur = loadJson(cur_path);
    if (!base || !cur)
        return 3;
    // Versioned schema: documents without the key are pre-versioning
    // output and accepted; an unknown (newer) version warns but still
    // compares — the producer may have added fields this build does
    // not know, which the comparison rules already tolerate.
    if (const JsonValue *ver = cur->find("schema_version")) {
        if (ver->isNumber() &&
            !rtp::schemaVersionKnown(
                static_cast<std::uint64_t>(ver->number)))
            std::fprintf(stderr,
                         "bench_diff: warning: %s has schema_version "
                         "%.0f, newer than supported %u; comparing "
                         "anyway\n",
                         cur_path.c_str(), ver->number,
                         rtp::kResultSchemaVersion);
    }
    std::vector<BenchViolation> violations =
        rtp::compareBench(*base, *cur, opts);
    if (violations.empty()) {
        std::printf("bench_diff: OK  %s vs %s\n", base_path.c_str(),
                    cur_path.c_str());
        return 0;
    }
    std::printf("bench_diff: FAIL  %s vs %s — %zu violation(s):\n",
                base_path.c_str(), cur_path.c_str(),
                violations.size());
    for (const BenchViolation &v : violations)
        std::printf("%s\n", rtp::formatViolation(v).c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDiffOptions opts;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--rel-tol" || arg == "--perf-tol") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            char *end = nullptr;
            double v = std::strtod(argv[++i], &end);
            if (!end || *end != '\0' || v < 0.0) {
                std::fprintf(stderr,
                             "bench_diff: %s needs a non-negative "
                             "number, got \"%s\"\n",
                             arg.c_str(), argv[i]);
                return 2;
            }
            (arg == "--rel-tol" ? opts.relTol : opts.perfTol) = v;
        } else if (arg == "--skip-perf") {
            opts.skipPerf = true;
        } else if (arg == "--include-histograms") {
            opts.includeHistograms = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "bench_diff: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return usage(argv[0]);

    std::error_code ec;
    bool base_is_dir = fs::is_directory(paths[0], ec);
    bool cur_is_dir = fs::is_directory(paths[1], ec);
    if (base_is_dir != cur_is_dir) {
        std::fprintf(stderr,
                     "bench_diff: %s and %s must both be files or "
                     "both be directories\n",
                     paths[0].c_str(), paths[1].c_str());
        return 2;
    }

    if (!base_is_dir)
        return compareFiles(paths[0], paths[1], opts);

    // Directory mode: every baseline *.json needs a current match.
    // std::map keys give a deterministic comparison order.
    std::map<std::string, fs::path> baselines;
    for (const auto &entry : fs::directory_iterator(paths[0], ec)) {
        if (entry.path().extension() == ".json")
            baselines[entry.path().filename().string()] =
                entry.path();
    }
    if (ec) {
        std::fprintf(stderr, "bench_diff: cannot read %s: %s\n",
                     paths[0].c_str(), ec.message().c_str());
        return 3;
    }
    if (baselines.empty()) {
        std::fprintf(stderr,
                     "bench_diff: no *.json baselines in %s\n",
                     paths[0].c_str());
        return 3;
    }

    int worst = 0;
    for (const auto &kv : baselines) {
        fs::path cur = fs::path(paths[1]) / kv.first;
        if (!fs::exists(cur, ec)) {
            std::printf("bench_diff: FAIL  %s has no counterpart "
                        "under %s\n",
                        kv.second.string().c_str(), paths[1].c_str());
            worst = std::max(worst, 1);
            continue;
        }
        worst = std::max(
            worst,
            compareFiles(kv.second.string(), cur.string(), opts));
    }
    return worst;
}
