/**
 * @file
 * Summarise a cycle-attribution profile emitted by the simulator's
 * CycleProfiler (RTP_PROFILE=out.json, see docs/observability.md), or
 * lint a Prometheus exposition written by RTP_METRICS.
 *
 * Usage:
 *   cycles_report <profile.json>
 *   cycles_report --lint <metrics.prom>
 *
 * Profile mode validates the file (well-formed JSON, schema version,
 * required members), re-checks the conservation law offline — every
 * SM's categories must sum to the elapsed cycle count — and prints:
 *   - a per-SM breakdown table, categories as columns, sorted by the
 *     global cost of each category;
 *   - the aggregate attribution ranked by share of total cycles;
 *   - a predictor cost/benefit section from the meta tallies: cycles
 *     spent looking up and verifying predictions against the cycles
 *     the predictor removed from box/tri work, plus cache behaviour.
 *
 * Lint mode runs promLint (util/metrics.hpp) over the exposition text
 * and prints one line per violation.
 *
 * Exits 0 on success, 1 on malformed input or I/O failure, 2 on usage
 * errors, 3 when the conservation law fails or the lint found
 * violations. CI uses the exit code to smoke-test profiled runs.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/schema.hpp"

namespace {

using rtp::JsonValue;

/** Whole-file slurp; empty optional on I/O failure. */
bool
readFile(const char *path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream os;
    os << is.rdbuf();
    out = os.str();
    return is.good() || is.eof();
}

/** One category's global tally, for ranking columns. */
struct CatTotal
{
    std::string name;
    std::uint64_t cycles = 0;
};

double
pctOf(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

int
runLint(const char *path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "cycles_report: cannot read %s\n", path);
        return 1;
    }
    std::vector<std::string> problems = rtp::promLint(text);
    if (problems.empty()) {
        std::printf("%s: exposition clean\n", path);
        return 0;
    }
    for (const std::string &p : problems)
        std::printf("%s: %s\n", path, p.c_str());
    std::printf("%zu violation(s)\n", problems.size());
    return 3;
}

int
runReport(const char *path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "cycles_report: cannot read %s\n", path);
        return 1;
    }
    std::string error;
    auto root = rtp::parseJson(text, &error);
    if (!root || !root->isObject()) {
        std::fprintf(stderr, "cycles_report: %s: %s\n", path,
                     error.empty() ? "not a JSON object"
                                   : error.c_str());
        return 1;
    }
    double schema = root->numberAt("schema_version", -1.0);
    if (schema != static_cast<double>(rtp::kResultSchemaVersion)) {
        std::fprintf(stderr,
                     "cycles_report: %s: schema_version %g != %u\n",
                     path, schema, rtp::kResultSchemaVersion);
        return 1;
    }
    const JsonValue *prof = root->find("profile");
    if (!prof || !prof->isObject()) {
        std::fprintf(stderr,
                     "cycles_report: %s: missing \"profile\" object\n",
                     path);
        return 1;
    }
    const JsonValue *cats = prof->find("categories");
    const JsonValue *sms = prof->find("sms");
    const JsonValue *total = prof->find("total");
    if (!cats || !cats->isArray() || !sms || !sms->isArray() ||
        !total || !total->isObject()) {
        std::fprintf(
            stderr,
            "cycles_report: %s: missing categories/sms/total\n", path);
        return 1;
    }
    const auto elapsed = static_cast<std::uint64_t>(
        prof->numberAt("elapsed_cycles", 0.0));
    const auto runs =
        static_cast<std::uint64_t>(prof->numberAt("runs", 0.0));

    std::vector<std::string> names;
    for (const JsonValue &c : cats->array)
        names.push_back(c.str);

    // Offline conservation re-check: the writer's InvariantChecker
    // already enforced this under RTP_CHECK=1, but the report must not
    // trust the file it summarises.
    bool conserved = true;
    for (const JsonValue &sm : sms->array) {
        const JsonValue *cycles = sm.find("cycles");
        if (!cycles || !cycles->isObject()) {
            std::fprintf(stderr,
                         "cycles_report: %s: SM row without cycles\n",
                         path);
            return 1;
        }
        std::uint64_t sum = 0;
        for (const std::string &n : names) {
            const JsonValue *cell = cycles->find(n);
            sum += static_cast<std::uint64_t>(
                cell ? cell->numberAt("total", 0.0) : 0.0);
        }
        auto smTotal = static_cast<std::uint64_t>(
            sm.numberAt("total_cycles", 0.0));
        if (sum != smTotal || sum != elapsed) {
            std::fprintf(stderr,
                         "cycles_report: conservation FAILED on SM %g: "
                         "category sum %llu, total_cycles %llu, "
                         "elapsed %llu\n",
                         sm.numberAt("sm", -1.0),
                         static_cast<unsigned long long>(sum),
                         static_cast<unsigned long long>(smTotal),
                         static_cast<unsigned long long>(elapsed));
            conserved = false;
        }
    }

    // Rank categories by global cost; print the aggregate first, then
    // the per-SM table with ranked columns.
    const JsonValue *totalCycles = total->find("cycles");
    std::vector<CatTotal> ranked;
    std::uint64_t grand = 0;
    for (const std::string &n : names) {
        CatTotal ct;
        ct.name = n;
        if (totalCycles) {
            const JsonValue *cell = totalCycles->find(n);
            ct.cycles = static_cast<std::uint64_t>(
                cell ? cell->numberAt("total", 0.0) : 0.0);
        }
        grand += ct.cycles;
        ranked.push_back(ct);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const CatTotal &a, const CatTotal &b) {
                         return a.cycles > b.cycles;
                     });

    std::printf("Cycle attribution: %zu SM(s), %llu run(s), "
                "%llu elapsed cycles/SM\n\n",
                sms->array.size(),
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(elapsed));
    std::printf("%-20s %14s %7s\n", "category", "cycles", "share");
    for (const CatTotal &ct : ranked)
        std::printf("%-20s %14llu %6.1f%%\n", ct.name.c_str(),
                    static_cast<unsigned long long>(ct.cycles),
                    pctOf(ct.cycles, grand));

    std::printf("\nPer-SM shares (%% of elapsed):\n%-5s", "sm");
    for (const CatTotal &ct : ranked)
        std::printf(" %10.10s", ct.name.c_str());
    std::printf("\n");
    for (const JsonValue &sm : sms->array) {
        std::printf("%-5g", sm.numberAt("sm", -1.0));
        const JsonValue *cycles = sm.find("cycles");
        for (const CatTotal &ct : ranked) {
            const JsonValue *cell =
                cycles ? cycles->find(ct.name) : nullptr;
            auto v = static_cast<std::uint64_t>(
                cell ? cell->numberAt("total", 0.0) : 0.0);
            std::printf(" %9.1f%%", pctOf(v, elapsed));
        }
        std::printf("\n");
    }

    // Predictor cost/benefit from the meta tallies. Cost: cycles in
    // lookup and verification plus the restart redo work. Benefit is
    // indirect — fewer box/tri cycles — so report the raw numbers and
    // the hit rate and let the reader compare against a baseline
    // profile; an attribution profile of one run cannot know the
    // counterfactual.
    const JsonValue *meta = total->find("meta");
    if (meta && meta->isObject()) {
        auto m = [&](const char *k) {
            return static_cast<std::uint64_t>(meta->numberAt(k, 0.0));
        };
        std::uint64_t lookups = m("pred_lookups");
        std::uint64_t hits = m("pred_hits");
        auto catCycles = [&](const char *n) -> std::uint64_t {
            const JsonValue *cell =
                totalCycles ? totalCycles->find(n) : nullptr;
            return static_cast<std::uint64_t>(
                cell ? cell->numberAt("total", 0.0) : 0.0);
        };
        std::printf("\nPredictor cost/benefit:\n");
        std::printf("  lookups %llu, table hits %llu (%.1f%%)\n",
                    static_cast<unsigned long long>(lookups),
                    static_cast<unsigned long long>(hits),
                    pctOf(hits, lookups));
        std::uint64_t cost = catCycles("pred_lookup") +
                             catCycles("pred_verify") +
                             catCycles("mispredict_restart");
        std::printf("  cost cycles: lookup %llu + verify %llu + "
                    "restart %llu = %llu (%.1f%% of total)\n",
                    static_cast<unsigned long long>(
                        catCycles("pred_lookup")),
                    static_cast<unsigned long long>(
                        catCycles("pred_verify")),
                    static_cast<unsigned long long>(
                        catCycles("mispredict_restart")),
                    static_cast<unsigned long long>(cost),
                    pctOf(cost, grand));
        std::printf("  traversal cycles: box %llu, tri %llu\n",
                    static_cast<unsigned long long>(
                        catCycles("box_test")),
                    static_cast<unsigned long long>(
                        catCycles("tri_test")));
        std::printf("  repack: %llu flushes, %llu rays\n",
                    static_cast<unsigned long long>(
                        m("repack_flushes")),
                    static_cast<unsigned long long>(m("repack_rays")));
        std::uint64_t l1h = m("l1_hits"), l1m = m("l1_misses");
        std::uint64_t l2h = m("l2_hits"), l2m = m("l2_misses");
        std::printf("  caches: L1 %.1f%% of %llu, L2 %.1f%% of %llu, "
                    "DRAM row hits %.1f%% of %llu\n",
                    pctOf(l1h, l1h + l1m),
                    static_cast<unsigned long long>(l1h + l1m),
                    pctOf(l2h, l2h + l2m),
                    static_cast<unsigned long long>(l2h + l2m),
                    pctOf(m("dram_row_hits"), m("dram_accesses")),
                    static_cast<unsigned long long>(
                        m("dram_accesses")));
    }

    if (!conserved) {
        std::printf("\nconservation: FAILED\n");
        return 3;
    }
    std::printf("\nconservation: OK (every SM sums to %llu)\n",
                static_cast<unsigned long long>(elapsed));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::string(argv[1]) == "--lint")
        return runLint(argv[2]);
    if (argc != 2 || argv[1][0] == '-') {
        std::fprintf(stderr,
                     "usage: cycles_report <profile.json>\n"
                     "       cycles_report --lint <metrics.prom>\n");
        return 2;
    }
    return runReport(argv[1]);
}
