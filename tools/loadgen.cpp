/**
 * @file
 * Service load generator: replays a seeded mixed-traffic stream
 * against SimService (src/service/) and reports latency percentiles
 * and throughput, gated in CI against bench/baselines/.
 *
 * Usage: loadgen [--seed <n>] [--workers <n>] [--queue <n>]
 *                [--interactive <n>] [--offline <n>]
 *
 * Three phases, each against a fresh service instance:
 *
 *   1. admission — a paused 1-worker service with a tiny queue bound
 *      is overfilled; because dispatch is paused the accepted/rejected
 *      split is exactly the queue bound and therefore deterministic.
 *   2. fairness — a paused 1-worker service queues jobs from three
 *      tenants back-to-back, then dispatch is released; the recorded
 *      startSeq order must be the round-robin interleaving.
 *   3. traffic — the measured phase: many small interactive ray
 *      slices (64..512 rays, seeded PCG32 picks) from two interactive
 *      tenants race a few full-AO offline sweeps over Sibenik and
 *      Fireplace. Warm-state keys are per (tenant, scene), so every
 *      tenant's same-key job sequence is FIFO-deterministic and the
 *      summed cycle count is byte-stable across runs and thread
 *      counts; only the wall-clock numbers vary.
 *
 * Output: bench_loadgen.json (honouring RTP_JSON_DIR) with
 * deterministic counters (symmetric 2% gate), *_latency_seconds keys
 * (one-sided higher-only gate) and rays_per_second (one-sided
 * slower-only gate) — see util/bench_compare.hpp for the rules.
 *
 * Exits 0 on success, 1 when a phase misbehaves (fairness violation,
 * failed job, unexpected admission split), 2 on usage errors.
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/env_config.hpp"
#include "exp/harness.hpp"
#include "service/sim_service.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/schema.hpp"

using namespace rtp;

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Exact nearest-rank percentile of a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx = rank <= 1.0
                          ? 0
                          : static_cast<std::size_t>(rank + 0.5) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

struct Options
{
    std::uint64_t seed = 42;
    unsigned workers = 0; //!< 0 = thread budget
    std::size_t queue = 0; //!< 0 = sized to fit the whole stream
    std::size_t interactive = 24;
    std::size_t offline = 2;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed <n>] [--workers <n>] "
                 "[--queue <n>] [--interactive <n>] [--offline <n>]\n",
                 argv0);
    return 2;
}

/** Phase 1: deterministic admission-control split under pause. */
bool
runAdmissionPhase(const Workload &w, std::ostringstream &json)
{
    constexpr std::size_t kLimit = 4;
    constexpr std::size_t kOffered = kLimit + 3;

    ServiceConfig sc;
    sc.workers = 1;
    sc.maxQueued = kLimit;
    sc.startPaused = true;
    SimService service(sc);

    // A tiny slice keeps the phase fast; admission control does not
    // care about the payload size.
    std::vector<Ray> slice(w.ao.rays.begin(),
                           w.ao.rays.begin() +
                               std::min<std::size_t>(
                                   64, w.ao.rays.size()));

    JobRequest req;
    req.tenant = "admission";
    req.sceneKey = ""; // no warm sharing in this phase
    req.bvh = &w.bvh;
    req.triangles = &w.scene.mesh.triangles();
    req.rays = &slice;
    req.config = SimConfig::proposed();

    std::size_t accepted = 0, rejected = 0;
    std::vector<JobId> ids;
    for (std::size_t i = 0; i < kOffered; ++i) {
        Admission adm = service.submit(req);
        if (adm.accepted) {
            accepted++;
            ids.push_back(adm.id);
        } else {
            rejected++;
        }
    }
    service.resume();
    bool ok = true;
    for (JobId id : ids)
        if (service.wait(id).state != JobState::Done)
            ok = false;
    service.shutdown();

    ok = ok && accepted == kLimit && rejected == kOffered - kLimit;
    std::printf("phase admission: offered=%zu accepted=%zu "
                "rejected=%zu queue_limit=%zu  %s\n",
                kOffered, accepted, rejected, kLimit,
                ok ? "OK" : "FAIL");
    json << "\"admission\":{\"offered\":" << kOffered
         << ",\"accepted\":" << accepted
         << ",\"rejected\":" << rejected
         << ",\"queue_limit\":" << kLimit << "}";
    return ok;
}

/** Phase 2: round-robin dispatch order across tenants. */
bool
runFairnessPhase(const Workload &w, std::ostringstream &json)
{
    ServiceConfig sc;
    sc.workers = 1; // single worker => startSeq is the dispatch order
    sc.maxQueued = 16;
    sc.startPaused = true;
    SimService service(sc);

    std::vector<Ray> slice(w.ao.rays.begin(),
                           w.ao.rays.begin() +
                               std::min<std::size_t>(
                                   64, w.ao.rays.size()));

    const char *tenants[] = {"alpha", "beta", "gamma"};
    constexpr std::size_t kPerTenant = 2;
    std::vector<JobId> ids;
    // Queue both of alpha's jobs, then beta's, then gamma's. Strict
    // FIFO service would run alpha twice before beta ever starts;
    // round-robin must interleave a1 b1 c1 a2 b2 c2.
    for (const char *tenant : tenants) {
        for (std::size_t i = 0; i < kPerTenant; ++i) {
            JobRequest req;
            req.tenant = tenant;
            req.bvh = &w.bvh;
            req.triangles = &w.scene.mesh.triangles();
            req.rays = &slice;
            req.config = SimConfig::proposed();
            req.shareWarmState = false;
            Admission adm = service.submit(req);
            if (!adm.accepted) {
                std::fprintf(stderr,
                             "loadgen: fairness submit rejected: %s\n",
                             adm.reason.c_str());
                return false;
            }
            ids.push_back(adm.id);
        }
    }
    service.resume();

    // ids[] is grouped by tenant (a1 a2 b1 b2 c1 c2); the round-robin
    // dispatch order by startSeq must be a1 b1 c1 a2 b2 c2.
    std::vector<std::uint64_t> seq(ids.size(), 0);
    bool ok = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        JobOutcome out = service.wait(ids[i]);
        if (out.state != JobState::Done)
            ok = false;
        seq[i] = out.startSeq;
    }
    service.shutdown();

    const std::uint64_t expect[] = {1, 4, 2, 5, 3, 6};
    for (std::size_t i = 0; i < ids.size(); ++i)
        if (seq[i] != expect[i])
            ok = false;

    std::printf("phase fairness: tenants=3 jobs=%zu round_robin=%d  "
                "%s\n",
                ids.size(), ok ? 1 : 0, ok ? "OK" : "FAIL");
    json << "\"fairness\":{\"tenants\":3,\"jobs\":" << ids.size()
         << ",\"round_robin\":" << (ok ? 1 : 0) << "}";
    return ok;
}

/** Phase 3: seeded mixed traffic; the measured phase. */
bool
runTrafficPhase(const Options &opts, WorkloadCache &cache,
                std::ostringstream &json)
{
    const Workload *scenes[] = {
        &cache.get(SceneId::Sibenik),
        &cache.get(SceneId::FireplaceRoom),
    };

    const std::size_t total_jobs = opts.interactive + opts.offline;
    ServiceConfig sc;
    sc.workers = opts.workers;
    sc.maxQueued = opts.queue ? opts.queue : total_jobs + 1;
    SimService service(sc);

    // Slices live in a deque so growth never moves earlier batches —
    // the service holds raw pointers until each job is collected.
    std::deque<std::vector<Ray>> slices;
    Rng rng(opts.seed);

    struct Pending
    {
        JobId id = 0;
        bool interactive = false;
        std::size_t rays = 0;
    };
    std::vector<Pending> pending;
    pending.reserve(total_jobs);

    auto submit_until_accepted =
        [&](const JobRequest &req) -> Admission {
        for (;;) {
            Admission adm = service.submit(req);
            if (adm.accepted || opts.queue == 0)
                return adm;
            // A bounded queue may be momentarily full; back off so
            // the job counters stay deterministic.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    };

    double t0 = now_seconds();

    // Offline sweeps first: the big jobs are in flight while the
    // interactive stream arrives, which is exactly the contention the
    // round-robin scheduler exists for.
    for (std::size_t i = 0; i < opts.offline; ++i) {
        const Workload *w = scenes[i % 2];
        JobRequest req;
        req.tenant = "offline";
        req.sceneKey = "offline/" + w->scene.shortName;
        req.bvh = &w->bvh;
        req.triangles = &w->scene.mesh.triangles();
        req.rays = &w->ao.rays;
        req.config = SimConfig::proposed();
        Admission adm = submit_until_accepted(req);
        if (!adm.accepted) {
            std::fprintf(stderr,
                         "loadgen: offline submit rejected: %s\n",
                         adm.reason.c_str());
            return false;
        }
        pending.push_back({adm.id, false, w->ao.rays.size()});
    }

    for (std::size_t i = 0; i < opts.interactive; ++i) {
        const Workload *w = scenes[rng.nextBounded(2)];
        std::size_t len = 64 + rng.nextBounded(449); // [64, 512]
        len = std::min(len, w->ao.rays.size());
        std::size_t off = rng.nextBounded(static_cast<std::uint32_t>(
            w->ao.rays.size() - len + 1));
        slices.emplace_back(w->ao.rays.begin() +
                                static_cast<std::ptrdiff_t>(off),
                            w->ao.rays.begin() +
                                static_cast<std::ptrdiff_t>(off + len));

        // Two interactive tenants, so fairness interleaves them with
        // the offline sweeps. Warm keys are per (tenant, scene):
        // each tenant's same-key sequence is FIFO-deterministic.
        JobRequest req;
        req.tenant = i % 2 ? "interactive-1" : "interactive-0";
        req.sceneKey = req.tenant + "/" + w->scene.shortName;
        req.bvh = &w->bvh;
        req.triangles = &w->scene.mesh.triangles();
        req.rays = &slices.back();
        req.config = SimConfig::proposed();
        Admission adm = submit_until_accepted(req);
        if (!adm.accepted) {
            std::fprintf(stderr,
                         "loadgen: interactive submit rejected: %s\n",
                         adm.reason.c_str());
            return false;
        }
        pending.push_back({adm.id, true, len});
    }

    std::vector<double> inter_lat, offline_lat;
    std::uint64_t total_cycles = 0;
    std::size_t total_rays = 0;
    bool ok = true;
    for (const Pending &p : pending) {
        JobOutcome out = service.wait(p.id);
        if (out.state != JobState::Done) {
            std::fprintf(stderr, "loadgen: job %llu %s: %s\n",
                         static_cast<unsigned long long>(p.id),
                         jobStateName(out.state), out.error.c_str());
            ok = false;
            continue;
        }
        double latency = out.queueSeconds + out.serviceSeconds;
        (p.interactive ? inter_lat : offline_lat).push_back(latency);
        total_cycles += out.result.cycles;
        total_rays += p.rays;
    }
    double wall = now_seconds() - t0;
    ServiceStats stats = service.stats();

    // RTP_METRICS=<path>: snapshot the traffic-phase service's full
    // observability surface (per-tenant counters, queue-wait and
    // latency histograms, warm-cache and lease-contention tallies) as
    // a Prometheus exposition before the workers tear down. CI keeps
    // the file as an artifact and lints it with cycles_report --lint.
    const std::string mpath = envString("RTP_METRICS");
    if (!mpath.empty()) {
        MetricsRegistry reg;
        service.exportMetrics(reg);
        bool wrote = false;
        if (ensureParentDir(mpath)) {
            if (std::FILE *f = std::fopen(mpath.c_str(), "w")) {
                const std::string body = reg.renderProm();
                wrote = std::fwrite(body.data(), 1, body.size(), f) ==
                        body.size();
                wrote = std::fclose(f) == 0 && wrote;
            }
        }
        if (wrote)
            std::fprintf(stderr,
                         "[rtp-loadgen] wrote metrics %s "
                         "(%zu families)\n",
                         mpath.c_str(), reg.families().size());
        else
            std::fprintf(stderr,
                         "[rtp-loadgen] cannot write metrics %s\n",
                         mpath.c_str());
    }
    service.shutdown();

    std::sort(inter_lat.begin(), inter_lat.end());
    std::sort(offline_lat.begin(), offline_lat.end());
    double p50 = percentile(inter_lat, 50.0);
    double p99 = percentile(inter_lat, 99.0);
    double off_p99 = percentile(offline_lat, 99.0);
    double rps = wall > 0.0 ? total_rays / wall : 0.0;

    std::printf("phase traffic: jobs=%zu (interactive=%zu "
                "offline=%zu) workers=%u\n",
                pending.size(), inter_lat.size(), offline_lat.size(),
                service.workerCount());
    std::printf("  rays=%zu cycles=%llu warm_hits=%llu "
                "warm_misses=%llu\n",
                total_rays,
                static_cast<unsigned long long>(total_cycles),
                static_cast<unsigned long long>(stats.warm.hits),
                static_cast<unsigned long long>(stats.warm.misses));
    std::printf("  interactive p50=%.4fs p99=%.4fs  offline "
                "p99=%.4fs  wall=%.3fs  rays/s=%.0f\n",
                p50, p99, off_p99, wall, rps);

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "\"traffic\":{\"jobs\":%zu,\"interactive_jobs\":%zu,"
        "\"offline_jobs\":%zu,\"total_rays\":%zu,"
        "\"total_cycles\":%llu,\"warm_hits\":%llu,"
        "\"warm_misses\":%llu,"
        "\"jobs_submitted\":%llu,\"jobs_completed\":%llu,"
        "\"jobs_rejected\":%llu,"
        "\"interactive_p50_latency_seconds\":%.6f,"
        "\"interactive_p99_latency_seconds\":%.6f,"
        "\"offline_p99_latency_seconds\":%.6f,"
        "\"wall_seconds\":%.6f,\"rays_per_second\":%.1f}",
        pending.size(), inter_lat.size(), offline_lat.size(),
        total_rays, static_cast<unsigned long long>(total_cycles),
        static_cast<unsigned long long>(stats.warm.hits),
        static_cast<unsigned long long>(stats.warm.misses),
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.rejected), p50, p99,
        off_p99, wall, rps);
    json << buf;
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next_number = [&](std::uint64_t &out) {
            if (i + 1 >= argc)
                return false;
            char *end = nullptr;
            errno = 0;
            unsigned long long v = std::strtoull(argv[++i], &end, 10);
            if (errno != 0 || !end || *end != '\0')
                return false;
            out = v;
            return true;
        };
        std::uint64_t v = 0;
        if (arg == "--seed" && next_number(v)) {
            opts.seed = v;
        } else if (arg == "--workers" && next_number(v)) {
            opts.workers = static_cast<unsigned>(v);
        } else if (arg == "--queue" && next_number(v)) {
            opts.queue = static_cast<std::size_t>(v);
        } else if (arg == "--interactive" && next_number(v)) {
            opts.interactive = static_cast<std::size_t>(v);
        } else if (arg == "--offline" && next_number(v)) {
            opts.offline = static_cast<std::size_t>(v);
        } else {
            return usage(argv[0]);
        }
    }
    if (opts.interactive == 0 && opts.offline == 0)
        return usage(argv[0]);

    WorkloadConfig wc = WorkloadConfig::fromEnvironment();
    printHeader("Service load generator (latency under mixed "
                "traffic, not a model output)",
                "n/a — measures this implementation, not the paper",
                wc);
    std::printf("seed=%llu workers=%u queue=%zu interactive=%zu "
                "offline=%zu\n\n",
                static_cast<unsigned long long>(opts.seed),
                opts.workers, opts.queue, opts.interactive,
                opts.offline);

    WorkloadCache cache(wc);
    const Workload &sibenik = cache.get(SceneId::Sibenik);

    std::ostringstream json;
    json << "{\"schema_version\":" << kResultSchemaVersion
         << ",\"bench\":\"loadgen\",\"seed\":" << opts.seed
         << ",\"results\":{";
    bool ok = runAdmissionPhase(sibenik, json);
    json << ",";
    ok = runFairnessPhase(sibenik, json) && ok;
    json << ",";
    ok = runTrafficPhase(opts, cache, json) && ok;
    json << "}}\n";

    const std::string dir = envString("RTP_JSON_DIR");
    std::string path = !dir.empty() ? dir + "/bench_loadgen.json"
                                    : "bench_loadgen.json";
    if (!ensureParentDir(path)) {
        std::fprintf(stderr, "[rtp-loadgen] cannot write %s\n",
                     path.c_str());
        return 1;
    }
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        const std::string body = json.str();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "[rtp-loadgen] wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "[rtp-loadgen] cannot write %s\n",
                     path.c_str());
        return 1;
    }
    if (!ok) {
        std::fprintf(stderr, "[rtp-loadgen] FAILED — see above\n");
        return 1;
    }
    return 0;
}
