/**
 * @file
 * Paper-scale smoke run: one scene at full tessellation detail with a
 * 512x512x1spp viewport (a quarter of the paper's 1024x1024x4 setup)
 * through the 8-SM proposed configuration — the smallest run that
 * exercises the simulator at paper-like scale rather than test scale.
 *
 * Used by the CI perf gate: the run must finish inside a wall-clock
 * budget (--budget-seconds or RTP_SMOKE_BUDGET, seconds; 0 disables),
 * so a host-performance regression that only shows up at scale — e.g.
 * a kernel or event-loop slowdown hidden by tiny test workloads —
 * fails loudly. The intersection kernels default to the batched SoA
 * path; RTP_KERNEL=scalar|soa overrides (exp/harness.cpp), letting the
 * gate also compare the two end to end.
 *
 * Prints the scene, ray count, simulated cycles, wall seconds, and
 * rays per wall-second. Exit status: 0 inside budget, 1 otherwise.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bvh/builder.hpp"
#include "exp/harness.hpp"
#include "geometry/intersect_soa.hpp"
#include "gpu/simulator.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"

using namespace rtp;

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    double budget_seconds = 0.0;
    if (const char *b = std::getenv("RTP_SMOKE_BUDGET"))
        budget_seconds = std::atof(b);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--budget-seconds") == 0 &&
            i + 1 < argc) {
            budget_seconds = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: paperscale_smoke "
                         "[--budget-seconds S]\n");
            return 2;
        }
    }

    KernelKind kernel = KernelKind::Soa;
    if (const char *k = std::getenv("RTP_KERNEL")) {
        if (!parseKernelName(k, kernel)) {
            std::fprintf(stderr,
                         "paperscale_smoke: RTP_KERNEL must be "
                         "\"scalar\" or \"soa\", got \"%s\"\n",
                         k);
            return 2;
        }
    }

    std::printf("paperscale_smoke: Sibenik detail=1.0 512x512x1spp, "
                "8 SMs proposed, kernel=%s\n",
                kernelName(kernel));

    double t0 = now_seconds();
    Scene scene = makeScene(SceneId::Sibenik, 1.0f);
    Bvh bvh = BvhBuilder().build(scene.mesh.triangles());
    RayGenConfig rg;
    rg.width = 512;
    rg.height = 512;
    rg.samplesPerPixel = 1;
    RayBatch batch = generateAoRays(scene, bvh, rg);
    double build_seconds = now_seconds() - t0;
    std::printf("  built %zu tris, %zu rays in %.2fs\n",
                scene.mesh.triangles().size(), batch.rays.size(),
                build_seconds);

    SimConfig config = SimConfig::proposed();
    config.numSms = 8;
    config.rt.kernel = kernel;

    t0 = now_seconds();
    SimResult result =
        Simulation(config, bvh, scene.mesh.triangles())
            .run(batch.rays);
    double sim_seconds = now_seconds() - t0;

    double rps =
        sim_seconds > 0.0 ? batch.rays.size() / sim_seconds : 0.0;
    std::printf("  %zu rays, %llu cycles, wall %.2fs, %.0f rays/s\n",
                batch.rays.size(),
                static_cast<unsigned long long>(result.cycles),
                sim_seconds, rps);

    if (budget_seconds > 0.0 && sim_seconds > budget_seconds) {
        std::fprintf(stderr,
                     "paperscale_smoke: FAIL — simulation wall clock "
                     "%.2fs exceeded the %.2fs budget\n",
                     sim_seconds, budget_seconds);
        return 1;
    }
    if (budget_seconds > 0.0)
        std::printf("  inside wall-clock budget (%.2fs <= %.2fs)\n",
                    sim_seconds, budget_seconds);
    return 0;
}
