#!/usr/bin/env python3
"""Plot Figure 12 from bench output, like the artifact's plot script.

The paper's artifact ships `plot_results_bar.py`, which turns the
performance sweep into the Figure 12 bar chart. This script does the
same for this repo: it parses `bench_fig12_speedup` output (either a
saved bench_output.txt or by running the binary) and renders a bar
chart — matplotlib PNG when available, ASCII otherwise.

Usage:
    tools/plot_fig12.py [bench_output.txt] [-o results.png]
    ./build/bench/bench_fig12_speedup | tools/plot_fig12.py -
"""

import re
import subprocess
import sys

ROW = re.compile(
    r"^(SB|SP|LE|LR|FR|BI|CK|GEO)\s+([+-]?\d+\.\d)%\s+([+-]?\d+\.\d)%")


def parse(lines):
    rows = []
    for line in lines:
        m = ROW.match(line.strip())
        if m:
            rows.append((m.group(1), float(m.group(2)),
                         float(m.group(3))))
    return rows


def ascii_chart(rows):
    print("Figure 12: speedup over baseline RT unit")
    print("          (#### unsorted, ==== sorted)")
    scale = 40.0 / max(1.0, max(abs(v) for _, u, s in rows
                                for v in (u, s)))
    for name, unsorted, sorted_ in rows:
        for label, val, ch in ((name, unsorted, "#"),
                               ("", sorted_, "=")):
            bar = ch * int(abs(val) * scale)
            sign = "-" if val < 0 else ""
            print(f"{label:>4} {sign}{bar} {val:+.1f}%")
    print()


def png_chart(rows, path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    names = [r[0] for r in rows]
    unsorted = [r[1] for r in rows]
    sorted_ = [r[2] for r in rows]
    x = range(len(names))
    width = 0.38
    fig, ax = plt.subplots(figsize=(8, 4))
    ax.bar([i - width / 2 for i in x], unsorted, width,
           label="Unsorted")
    ax.bar([i + width / 2 for i in x], sorted_, width, label="Sorted")
    ax.set_xticks(list(x))
    ax.set_xticklabels(names)
    ax.set_ylabel("Speedup over baseline (%)")
    ax.set_title("Figure 12: ray intersection predictor speedup")
    ax.axhline(0, color="black", linewidth=0.8)
    ax.legend()
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def main():
    args = sys.argv[1:]
    out_png = None
    if "-o" in args:
        i = args.index("-o")
        out_png = args[i + 1]
        del args[i:i + 2]

    if args and args[0] == "-":
        lines = sys.stdin.read().splitlines()
    elif args:
        with open(args[0]) as f:
            lines = f.read().splitlines()
    else:
        proc = subprocess.run(["./build/bench/bench_fig12_speedup"],
                              capture_output=True, text=True,
                              check=True)
        lines = proc.stdout.splitlines()

    rows = parse(lines)
    if not rows:
        sys.exit("no Figure 12 rows found in input")

    if out_png:
        try:
            png_chart(rows, out_png)
            return
        except ImportError:
            print("matplotlib unavailable; ASCII fallback\n")
    ascii_chart(rows)


if __name__ == "__main__":
    main()
