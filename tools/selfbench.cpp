/**
 * @file
 * Simulator self-benchmark: measures the simulator's own execution
 * speed (simulated rays per wall-clock second), not any property of the
 * modelled hardware. Used to track host-performance regressions of the
 * per-cycle core; docs/performance.md records the methodology and the
 * numbers across revisions.
 *
 * Deliberately single-threaded at the sweep level (one Simulation at a
 * time) so the number is a property of the core, not of the sweep
 * harness's thread pool. A second section measures the sharded event
 * loop (SimConfig::simThreads, docs/performance.md) on an 8-SM
 * configuration: "<scene>/sharded_t1" runs the sequential reference
 * loop and "<scene>/sharded_t4" the same workload with 4 event-loop
 * workers, so the JSON records the intra-simulation speedup under
 * fixed, machine-independent labels. The sharded cells' cycle counts
 * are identical by construction (byte-stable contract); only wall
 * seconds differ.
 *
 * Environment:
 *   RTP_SELFBENCH_REPS  repetitions per (scene, config) cell; the
 *                       fastest rep is reported (default 3).
 *   RTP_JSON_DIR        directory for bench_selfbench.json (default
 *                       the working directory).
 *   RTP_SCALE           workload fidelity, as for every bench binary.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "exp/env_config.hpp"
#include "exp/harness.hpp"
#include "geometry/intersect.hpp"
#include "util/profile.hpp"
#include "util/schema.hpp"
#include "geometry/intersect_soa.hpp"
#include "rays/ray_soa.hpp"
#include "util/rng.hpp"

using namespace rtp;

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct Cell
{
    std::string label;
    std::size_t rays = 0;
    Cycle cycles = 0;
    double wallSeconds = 0.0; //!< fastest rep

    double
    raysPerSecond() const
    {
        return wallSeconds > 0.0 ? rays / wallSeconds : 0.0;
    }
};

} // namespace

int
main()
{
    WorkloadConfig wc = WorkloadConfig::fromEnvironment();
    printHeader("Simulator self-benchmark (host speed, not model "
                "output)",
                "n/a — measures this implementation, not the paper",
                wc);

    // Strict parsing via the unified env layer (exp/env_config.hpp).
    int reps = static_cast<int>(
        parseEnvPositive("RTP_SELFBENCH_REPS", 3));

    WorkloadCache cache(wc);
    std::vector<const Workload *> workloads =
        cache.getAll(allSceneIds());

    struct Config
    {
        const char *name;
        SimConfig config;
    };
    std::vector<Config> configs = {
        {"baseline", SimConfig::baseline()},
        {"proposed", SimConfig::proposed()},
    };

    std::vector<Cell> cells;
    std::size_t total_rays = 0;
    double total_wall = 0.0;

    std::printf("%-22s %10s %12s %14s\n", "Cell", "Rays", "Wall(s)",
                "Rays/s");
    for (const Workload *w : workloads) {
        for (const Config &c : configs) {
            Simulation sim(c.config, w->bvh,
                           w->scene.mesh.triangles());
            Cell cell;
            cell.label = w->scene.shortName + "/" + c.name;
            cell.rays = w->ao.rays.size();
            cell.wallSeconds = -1.0;
            for (int rep = 0; rep < reps; ++rep) {
                double t0 = now_seconds();
                SimResult r = sim.run(w->ao.rays);
                double dt = now_seconds() - t0;
                cell.cycles = r.cycles;
                if (cell.wallSeconds < 0.0 || dt < cell.wallSeconds)
                    cell.wallSeconds = dt;
            }
            total_rays += cell.rays;
            total_wall += cell.wallSeconds;
            std::printf("%-22s %10zu %12.4f %14.0f\n",
                        cell.label.c_str(), cell.rays,
                        cell.wallSeconds, cell.raysPerSecond());
            cells.push_back(std::move(cell));
        }
    }

    // Sharded-loop section: the paper-scale configuration (8 SMs) run
    // with the sequential loop vs 4 event-loop workers on a scene
    // subset, so CI tracks the intra-simulation speedup without
    // doubling the selfbench runtime. Cycle counts of the two cells
    // are identical (byte-stable contract); rays/s is the payoff.
    {
        SimConfig sharded = SimConfig::proposed();
        sharded.numSms = 8;
        std::vector<const Workload *> shard_scenes = cache.getAll(
            {SceneId::Sibenik, SceneId::FireplaceRoom,
             SceneId::CrytekSponza});
        double t1_wall = 0.0, t4_wall = 0.0;
        for (const Workload *w : shard_scenes) {
            for (unsigned threads : {1u, 4u}) {
                SimConfig c = sharded;
                c.simThreads = threads;
                Simulation sim(c, w->bvh, w->scene.mesh.triangles());
                Cell cell;
                cell.label = w->scene.shortName + "/sharded_t" +
                             std::to_string(threads);
                cell.rays = w->ao.rays.size();
                cell.wallSeconds = -1.0;
                for (int rep = 0; rep < reps; ++rep) {
                    double t0 = now_seconds();
                    SimResult r = sim.run(w->ao.rays);
                    double dt = now_seconds() - t0;
                    cell.cycles = r.cycles;
                    if (cell.wallSeconds < 0.0 ||
                        dt < cell.wallSeconds)
                        cell.wallSeconds = dt;
                }
                (threads == 1 ? t1_wall : t4_wall) +=
                    cell.wallSeconds;
                total_rays += cell.rays;
                total_wall += cell.wallSeconds;
                std::printf("%-22s %10zu %12.4f %14.0f\n",
                            cell.label.c_str(), cell.rays,
                            cell.wallSeconds, cell.raysPerSecond());
                cells.push_back(std::move(cell));
            }
        }
        if (t4_wall > 0.0)
            std::fprintf(stderr,
                         "[rtp-selfbench] sharded-loop speedup "
                         "(RTP_SIM_THREADS=4 vs sequential): %.2fx\n",
                         t1_wall / t4_wall);
    }

    // SoA-kernel section: the same 8-SM configuration with the batched
    // intersection kernels (RTP_KERNEL=soa), sequential and 4-worker.
    // Simulated cycles are identical to the sharded cells above (the
    // bitwise scalar/SoA equivalence contract); rays/s shows how much
    // of the end-to-end run the intersection kernels were.
    {
        SimConfig soa = SimConfig::proposed();
        soa.numSms = 8;
        soa.rt.kernel = KernelKind::Soa;
        std::vector<const Workload *> soa_scenes = cache.getAll(
            {SceneId::Sibenik, SceneId::FireplaceRoom,
             SceneId::CrytekSponza});
        for (const Workload *w : soa_scenes) {
            for (unsigned threads : {1u, 4u}) {
                SimConfig c = soa;
                c.simThreads = threads;
                Simulation sim(c, w->bvh, w->scene.mesh.triangles());
                Cell cell;
                cell.label = w->scene.shortName + "/soa_t" +
                             std::to_string(threads);
                cell.rays = w->ao.rays.size();
                cell.wallSeconds = -1.0;
                for (int rep = 0; rep < reps; ++rep) {
                    double t0 = now_seconds();
                    SimResult r = sim.run(w->ao.rays);
                    double dt = now_seconds() - t0;
                    cell.cycles = r.cycles;
                    if (cell.wallSeconds < 0.0 ||
                        dt < cell.wallSeconds)
                        cell.wallSeconds = dt;
                }
                total_rays += cell.rays;
                total_wall += cell.wallSeconds;
                std::printf("%-22s %10zu %12.4f %14.0f\n",
                            cell.label.c_str(), cell.rays,
                            cell.wallSeconds, cell.raysPerSecond());
                cells.push_back(std::move(cell));
            }
        }
    }

    // Profiler-overhead section: the proposed configuration on one
    // scene with the cycle-attribution profiler detached vs attached
    // (RTP_PROFILE, util/profile.hpp). Simulated cycles are identical
    // (zero-perturbation contract); the wall-clock delta is the
    // profiler's full observation cost, which must stay marginal
    // (target < 1%, noise-dominated at these runtimes).
    {
        const Workload *w = &cache.get(SceneId::Sibenik);
        CycleProfiler profiler;
        double off_wall = 0.0, on_wall = 0.0;
        for (int attached = 0; attached < 2; ++attached) {
            SimConfig c = SimConfig::proposed();
            if (attached)
                c.profile = &profiler;
            Simulation sim(c, w->bvh, w->scene.mesh.triangles());
            Cell cell;
            cell.label = w->scene.shortName +
                         (attached ? "/profile_on" : "/profile_off");
            cell.rays = w->ao.rays.size();
            cell.wallSeconds = -1.0;
            for (int rep = 0; rep < reps; ++rep) {
                double t0 = now_seconds();
                SimResult r = sim.run(w->ao.rays);
                double dt = now_seconds() - t0;
                cell.cycles = r.cycles;
                if (cell.wallSeconds < 0.0 || dt < cell.wallSeconds)
                    cell.wallSeconds = dt;
            }
            (attached ? on_wall : off_wall) = cell.wallSeconds;
            total_rays += cell.rays;
            total_wall += cell.wallSeconds;
            std::printf("%-22s %10zu %12.4f %14.0f\n",
                        cell.label.c_str(), cell.rays,
                        cell.wallSeconds, cell.raysPerSecond());
            cells.push_back(std::move(cell));
        }
        if (off_wall > 0.0)
            std::fprintf(stderr,
                         "[rtp-selfbench] profile_overhead: %+.2f%% "
                         "wall (profiler on vs off)\n",
                         100.0 * (on_wall - off_wall) / off_wall);
    }

    // Kernel-bound microbenchmark: raw intersection-test throughput of
    // the scalar kernels vs the batched SoA kernels, isolated from the
    // event loop. "rays" counts individual intersection tests. These
    // are the cells where the SoA speedup target applies — end-to-end
    // cells dilute the kernels with event-queue and cache-model work.
    {
        Rng rng(97);
        constexpr std::uint32_t kLanes = RayLanes::kMax;
        std::vector<Ray> rays;
        for (std::uint32_t i = 0; i < kLanes; ++i) {
            Ray r;
            r.origin = {rng.nextRange(-4, 4), rng.nextRange(-4, 4),
                        -10.0f};
            r.dir = {rng.nextRange(-0.4f, 0.4f),
                     rng.nextRange(-0.4f, 0.4f), 1.0f};
            rays.push_back(r);
        }
        Aabb box{{-2, -2, -2}, {2, 2, 2}};
        std::vector<RayBoxPrecomp> pres;
        for (const Ray &r : rays)
            pres.emplace_back(r);
        RayBatchSoA batch = RayBatchSoA::fromRays(rays);
        std::uint32_t slots[kLanes];
        for (std::uint32_t i = 0; i < kLanes; ++i)
            slots[i] = i;
        RayLanes lanes;
        batch.gather(slots, kLanes, lanes);

        std::vector<Triangle> tri_vec;
        std::vector<std::uint32_t> slot_to_tri;
        for (std::uint32_t i = 0; i < kLanes; ++i) {
            tri_vec.push_back(Triangle{
                {rng.nextRange(-4, 4), rng.nextRange(-4, 4),
                 rng.nextRange(3, 8)},
                {rng.nextRange(-4, 4), rng.nextRange(-4, 4),
                 rng.nextRange(3, 8)},
                {rng.nextRange(-4, 4), rng.nextRange(-4, 4),
                 rng.nextRange(3, 8)}});
            slot_to_tri.push_back(i);
        }
        TriangleSoA tri_soa = TriangleSoA::build(tri_vec, slot_to_tri);

        constexpr int kBoxIters = 100000;
        constexpr int kTriIters = 50000;
        volatile double sink = 0.0; //!< defeats dead-code elimination

        auto time_cell = [&](const char *label, std::size_t tests,
                             auto &&body) {
            Cell cell;
            cell.label = label;
            cell.rays = tests;
            cell.wallSeconds = -1.0;
            for (int rep = 0; rep < reps; ++rep) {
                double t0 = now_seconds();
                body();
                double dt = now_seconds() - t0;
                if (cell.wallSeconds < 0.0 || dt < cell.wallSeconds)
                    cell.wallSeconds = dt;
            }
            total_rays += cell.rays;
            total_wall += cell.wallSeconds;
            std::printf("%-22s %10zu %12.4f %14.0f\n",
                        cell.label.c_str(), cell.rays,
                        cell.wallSeconds, cell.raysPerSecond());
            double rps = cell.raysPerSecond();
            cells.push_back(std::move(cell));
            return rps;
        };

        double box_scalar_rps = time_cell(
            "kernel/box_scalar",
            static_cast<std::size_t>(kBoxIters) * kLanes, [&] {
                double acc = 0.0;
                for (int it = 0; it < kBoxIters; ++it)
                    for (std::uint32_t i = 0; i < kLanes; ++i) {
                        float t = 0;
                        if (intersectRayAabb(rays[i], pres[i], box, t))
                            acc += t;
                    }
                sink = sink + acc;
            });
        double box_soa_rps = time_cell(
            "kernel/box_soa",
            static_cast<std::size_t>(kBoxIters) * kLanes, [&] {
                float t[kLanes];
                std::uint8_t hit[kLanes];
                double acc = 0.0;
                for (int it = 0; it < kBoxIters; ++it) {
                    intersectRayAabbSoa(lanes, kLanes, box, t, hit);
                    acc += t[it % kLanes];
                }
                sink = sink + acc;
            });
        double tri_scalar_rps = time_cell(
            "kernel/tri_scalar",
            static_cast<std::size_t>(kTriIters) * kLanes, [&] {
                double acc = 0.0;
                for (int it = 0; it < kTriIters; ++it)
                    for (std::uint32_t i = 0; i < kLanes; ++i) {
                        HitRecord rec;
                        if (intersectRayTriangle(rays[i], tri_vec[i],
                                                 rec))
                            acc += rec.t;
                    }
                sink = sink + acc;
            });
        double tri_soa_rps = time_cell(
            "kernel/tri_soa",
            static_cast<std::size_t>(kTriIters) * kLanes, [&] {
                TriLaneHits out;
                out.resize(kLanes);
                double acc = 0.0;
                for (int it = 0; it < kTriIters; ++it) {
                    intersectRayTriangleSoa(rays[it % kLanes].origin,
                                            rays[it % kLanes].dir,
                                            tri_soa, 0, kLanes, out);
                    acc += out.t[it % kLanes];
                }
                sink = sink + acc;
            });
        if (box_scalar_rps > 0.0 && tri_scalar_rps > 0.0)
            std::fprintf(stderr,
                         "[rtp-selfbench] SoA kernel speedup "
                         "(tests/s vs scalar): box %.2fx, tri %.2fx\n",
                         box_soa_rps / box_scalar_rps,
                         tri_soa_rps / tri_scalar_rps);
    }

    double total_rps = total_wall > 0.0 ? total_rays / total_wall : 0.0;
    std::printf("%-22s %10zu %12.4f %14.0f\n", "TOTAL", total_rays,
                total_wall, total_rps);

    // bench_selfbench.json, honouring RTP_JSON_DIR like every bench.
    std::ostringstream os;
    os << "{\"schema_version\":" << kResultSchemaVersion
       << ",\"bench\":\"selfbench\",\"reps\":" << reps
       << ",\"results\":{";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        if (i)
            os << ",";
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"rays\":%zu,\"cycles\":%llu,"
                      "\"wall_seconds\":%.6f,\"rays_per_second\":%.1f}",
                      c.label.c_str(), c.rays,
                      static_cast<unsigned long long>(c.cycles),
                      c.wallSeconds, c.raysPerSecond());
        os << buf;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "},\"total\":{\"rays\":%zu,\"wall_seconds\":%.6f,"
                  "\"rays_per_second\":%.1f}}\n",
                  total_rays, total_wall, total_rps);
    os << buf;

    const std::string dir = envString("RTP_JSON_DIR");
    std::string path = !dir.empty()
                           ? dir + "/bench_selfbench.json"
                           : "bench_selfbench.json";
    if (!ensureParentDir(path)) {
        std::fprintf(stderr, "[rtp-selfbench] cannot write %s\n",
                     path.c_str());
        return 1;
    }
    if (std::FILE *f = std::fopen(path.c_str(), "w")) {
        const std::string body = os.str();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        std::fprintf(stderr, "[rtp-selfbench] wrote %s\n",
                     path.c_str());
    } else {
        std::fprintf(stderr, "[rtp-selfbench] cannot write %s\n",
                     path.c_str());
        return 1;
    }
    return 0;
}
