/**
 * @file
 * simfuzz: seeded deterministic configuration fuzzer for the checked
 * simulation (docs/validation.md).
 *
 * Each seed deterministically derives a random-but-valid SimConfig, a
 * procedural scene, and a mixed ray batch, then runs the workload
 * through runDifferential: predictor-on and predictor-off full
 * simulations with the invariant checker and the per-ray reference
 * oracle attached to both, plus the on/off visibility comparison. Any
 * InvariantViolation (or other exception) fails the seed.
 *
 * With --sharded the differential changes target: each seed runs the
 * derived point with the sequential event loop (simThreads = 1) and
 * with the sharded loop at 2 and 4 workers, all under the invariant
 * checker, and byte-compares the SimResult JSON plus the number of
 * checker probes. Any divergence — or any exception — fails the seed,
 * fuzzing the sharded loop's byte-identical contract
 * (docs/performance.md) across the whole randomised config space.
 *
 * With --kernel the differential instead fuzzes the intersection-kernel
 * seam: each seed runs the derived point with the scalar kernels
 * (KernelKind::Scalar) and with the SoA kernels (KernelKind::Soa),
 * both under the invariant checker, and byte-compares the SimResult
 * JSON plus the number of checker probes — the bitwise scalar/SoA
 * equivalence contract (geometry/intersect_soa.hpp) across the
 * randomised config space.
 *
 * With --backend the differential fuzzes the predictor-backend seam
 * (core/predictor_backend.hpp): each seed runs the derived point with
 * the hash-table backend and with the learned backend (predictor
 * forced on), both under the invariant checker and the per-ray
 * reference oracle. Backends only influence timing, never visibility,
 * so per-ray hit flags must match, closest-hit distances must match
 * bitwise, and rays_completed must be equal — while predictor outcome
 * counters (lookup hits/misses, evictions) and cycle counts are
 * expected to diverge and are deliberately NOT compared.
 *
 * On failure the tool prints an exact reproducer — the seed plus the
 * derived configuration as JSON — greedily shrinks the failing ray set
 * (chunk removal), and optionally writes the reproducer to a JSON file
 * (--repro-out; CI uploads it as an artifact). Everything is derived
 * from the seed, so `simfuzz --repro <seed>` (plus --sharded when the
 * failure came from the sharded mode) rebuilds the failing point
 * exactly.
 *
 * Usage:
 *   simfuzz [--seeds N] [--base-seed B] [--repro SEED]
 *           [--repro-out PATH] [--sharded] [--kernel] [--backend]
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "bvh/builder.hpp"
#include "geometry/intersect_soa.hpp"
#include "gpu/differential.hpp"
#include "gpu/simulator.hpp"
#include "rays/raygen.hpp"
#include "scene/registry.hpp"
#include "util/check.hpp"
#include "util/profile.hpp"
#include "util/rng.hpp"

namespace {

using namespace rtp;

/** One cached fuzz scene: geometry, BVH, and a mixed ray pool. */
struct FuzzScene
{
    Scene scene;
    Bvh bvh;
    std::vector<Ray> pool; //!< AO (occlusion) + primary + GI rays

    explicit FuzzScene(SceneId id)
        : scene(makeScene(id, 0.05f))
    {
        bvh = BvhBuilder().build(scene.mesh.triangles());
        RayGenConfig cfg;
        cfg.width = 24;
        cfg.height = 24;
        cfg.samplesPerPixel = 1;
        cfg.viewportFraction = 0.4f;
        for (const Ray &r : generateAoRays(scene, bvh, cfg).rays)
            pool.push_back(r);
        for (const Ray &r : generatePrimaryRays(scene, cfg).rays)
            pool.push_back(r);
        for (const Ray &r : generateGiRays(scene, bvh, cfg).rays)
            pool.push_back(r);
    }
};

/** Pick one element of a small inline table. */
template <typename T, std::size_t N>
T
pick(Rng &rng, const T (&options)[N])
{
    return options[rng.nextBounded(static_cast<std::uint32_t>(N))];
}

/**
 * Derive a random but always-valid configuration from @p rng. The two
 * deliberate couplings keep fuzzed runs well-formed rather than hiding
 * bugs: the repacker's warp size must match the RT unit's (mismatched
 * sizes mis-slice collector output), and its capacity must hold a full
 * warp of overflow past a full batch (2*warpSize - 1) or predicted ray
 * IDs get dropped and the simulation hangs — exactly the conservation
 * law the checker enforces.
 */
SimConfig
deriveConfig(Rng &rng, const Bvh &bvh)
{
    SimConfig c;
    c.numSms = 1 + rng.nextBounded(4);

    const std::uint32_t warp_sizes[] = {4u, 8u, 16u, 32u};
    c.rt.warpSize = pick(rng, warp_sizes);
    const std::uint32_t max_warps[] = {1u, 2u, 4u, 8u};
    c.rt.maxWarps = pick(rng, max_warps);
    c.rt.additionalWarps = rng.nextBounded(3);
    const std::uint32_t stack_entries[] = {2u, 4u, 8u, 16u};
    c.rt.stackEntries = pick(rng, stack_entries);
    c.rt.l1PortsPerCycle = 1 + rng.nextBounded(4);
    c.rt.queueLatency = 1 + rng.nextBounded(4);
    c.rt.isect.boxTestLatency = 1 + rng.nextBounded(4);
    c.rt.isect.triTestLatency = 1 + rng.nextBounded(4);
    c.rt.repackEnabled = rng.nextBounded(2) == 0;
    c.rt.repacker.warpSize = c.rt.warpSize;
    c.rt.repacker.capacity =
        2 * c.rt.warpSize + rng.nextBounded(c.rt.warpSize + 1);
    c.rt.repacker.timeout = 4 + rng.nextBounded(29);
    c.rt.eventQueue = rng.nextBounded(2) == 0
                          ? EventQueueImpl::Calendar
                          : EventQueueImpl::LegacyHeap;

    c.predictor.enabled = rng.nextBounded(8) != 0; // mostly on
    std::uint32_t max_goup = bvh.maxDepth() < 6 ? bvh.maxDepth() : 6;
    c.predictor.goUpLevel = rng.nextBounded(max_goup + 1);
    c.predictor.accessPorts = 1 + rng.nextBounded(4);
    c.predictor.accessLatency = 1 + rng.nextBounded(2);
    c.predictor.hash.function = rng.nextBounded(2) == 0
                                    ? HashFunction::GridSpherical
                                    : HashFunction::TwoPoint;
    c.predictor.hash.originBits = 2 + rng.nextBounded(7);
    c.predictor.hash.directionBits = 2 + rng.nextBounded(5);
    c.predictor.hash.lengthRatio = 0.05f + 0.45f * rng.nextFloat();
    const std::uint32_t entries[] = {16u, 64u, 256u, 1024u};
    c.predictor.table.numEntries = pick(rng, entries);
    const std::uint32_t ways[] = {1u, 2u, 4u};
    c.predictor.table.ways = pick(rng, ways);
    c.predictor.table.nodesPerEntry = 1 + rng.nextBounded(4);
    const NodeReplacement repl[] = {NodeReplacement::LRU,
                                    NodeReplacement::LFU,
                                    NodeReplacement::LRUK};
    c.predictor.table.nodeReplacement = pick(rng, repl);
    c.predictor.table.lruK = 2 + rng.nextBounded(2);

    const std::uint32_t l1_sizes[] = {4u * 1024, 16u * 1024,
                                      64u * 1024};
    c.memory.l1.sizeBytes = pick(rng, l1_sizes);
    const std::uint32_t line_sizes[] = {32u, 128u};
    c.memory.l1.lineBytes = pick(rng, line_sizes);
    c.memory.l1.ways = rng.nextBounded(2) == 0 ? 0 : 4;
    c.memory.l1.hitLatency = 1 + rng.nextBounded(6);
    const std::uint32_t l2_sizes[] = {64u * 1024, 256u * 1024,
                                      1024u * 1024};
    c.memory.l2.sizeBytes = pick(rng, l2_sizes);
    c.memory.l2.lineBytes = c.memory.l1.lineBytes;
    c.memory.l2.ways = rng.nextBounded(2) == 0 ? 0 : 16;
    c.memory.l2.hitLatency = 1 + rng.nextBounded(4);
    c.memory.l1ToL2Latency = 10 + rng.nextBounded(91);
    c.memory.l2ToDramLatency = 10 + rng.nextBounded(101);
    c.memory.l2Enabled = rng.nextBounded(4) != 0;
    const std::uint32_t banks[] = {4u, 16u};
    c.memory.dram.numBanks = pick(rng, banks);
    return c;
}

/** Deterministically derive one fuzz point's rays from @p rng. */
std::vector<Ray>
deriveRays(Rng &rng, const FuzzScene &fs)
{
    std::uint32_t count = 64 + rng.nextBounded(449); // 64..512
    std::vector<Ray> rays;
    rays.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        rays.push_back(fs.pool[rng.nextBounded(
            static_cast<std::uint32_t>(fs.pool.size()))]);
    return rays;
}

/** @return The failure message, or empty when the point passes. */
std::string
runPoint(const SimConfig &config, const FuzzScene &fs,
         const std::vector<Ray> &rays)
{
    try {
        InvariantChecker check;
        // The profiler rides every checked fuzz run: runEventLoop
        // re-verifies the cycle-conservation law through the checker,
        // and the differential's two runs (predictor on + off)
        // exercise multi-run accumulation on one profiler.
        CycleProfiler profile;
        SimConfig checked = config;
        checked.check = &check;
        checked.profile = &profile;
        runDifferential(checked, fs.bvh, fs.scene.mesh.triangles(),
                        rays);
        return std::string();
    } catch (const std::exception &e) {
        return e.what();
    }
}

/**
 * Sequential-vs-sharded differential (--sharded): run the point with
 * the sequential event loop and with 2 and 4 sharded workers (worker
 * count clamps to numSms inside the simulator), all under the
 * invariant checker, and byte-compare the SimResult JSON and the
 * checker-probe count. @return The failure message, or empty.
 */
std::string
runShardedPoint(const SimConfig &config, const FuzzScene &fs,
                const std::vector<Ray> &rays)
{
    try {
        auto run_at = [&](std::uint32_t threads,
                          std::uint64_t &checks_run,
                          std::string &profile_json) {
            InvariantChecker check;
            CycleProfiler profile;
            SimConfig c = config;
            c.check = &check;
            c.profile = &profile;
            c.simThreads = threads;
            std::string json =
                Simulation(c, fs.bvh, fs.scene.mesh.triangles())
                    .run(rays)
                    .toJson();
            checks_run = check.checksRun();
            profile_json = profile.toJson();
            return json;
        };
        std::uint64_t ref_checks = 0;
        std::string ref_profile;
        const std::string ref = run_at(1, ref_checks, ref_profile);
        for (std::uint32_t threads : {2u, 4u}) {
            std::uint64_t got_checks = 0;
            std::string got_profile;
            const std::string got =
                run_at(threads, got_checks, got_profile);
            if (got != ref)
                return "sharded loop (simThreads=" +
                       std::to_string(threads) +
                       ") diverged from the sequential reference "
                       "SimResult JSON";
            if (got_checks != ref_checks)
                return "sharded loop (simThreads=" +
                       std::to_string(threads) + ") ran " +
                       std::to_string(got_checks) +
                       " checker probes vs " +
                       std::to_string(ref_checks) + " sequentially";
            if (got_profile != ref_profile)
                return "sharded loop (simThreads=" +
                       std::to_string(threads) +
                       ") diverged from the sequential reference "
                       "cycle-attribution profile JSON";
        }
        return std::string();
    } catch (const std::exception &e) {
        return e.what();
    }
}

/**
 * Scalar-vs-SoA kernel differential (--kernel): run the point with
 * each KernelKind under the invariant checker and byte-compare the
 * SimResult JSON and the checker-probe count. @return The failure
 * message, or empty.
 */
std::string
runKernelPoint(const SimConfig &config, const FuzzScene &fs,
               const std::vector<Ray> &rays)
{
    try {
        auto run_with = [&](KernelKind kernel,
                            std::uint64_t &checks_run,
                            std::string &profile_json) {
            InvariantChecker check;
            // Profiler probes live only in kernel-shared code, so the
            // attribution profile is part of the equivalence contract.
            CycleProfiler profile;
            SimConfig c = config;
            c.check = &check;
            c.profile = &profile;
            c.rt.kernel = kernel;
            std::string json =
                Simulation(c, fs.bvh, fs.scene.mesh.triangles())
                    .run(rays)
                    .toJson();
            checks_run = check.checksRun();
            profile_json = profile.toJson();
            return json;
        };
        std::uint64_t ref_checks = 0, soa_checks = 0;
        std::string ref_profile, soa_profile;
        const std::string ref =
            run_with(KernelKind::Scalar, ref_checks, ref_profile);
        const std::string soa =
            run_with(KernelKind::Soa, soa_checks, soa_profile);
        if (soa != ref)
            return "SoA kernels diverged from the scalar reference "
                   "SimResult JSON";
        if (soa_checks != ref_checks)
            return "SoA kernels ran " + std::to_string(soa_checks) +
                   " checker probes vs " + std::to_string(ref_checks) +
                   " scalar";
        if (soa_profile != ref_profile)
            return "SoA kernels diverged from the scalar reference "
                   "cycle-attribution profile JSON";
        return std::string();
    } catch (const std::exception &e) {
        return e.what();
    }
}

/**
 * Hash-vs-learned backend differential (--backend): run the point with
 * each PredictorBackendKind (predictor forced on) under the invariant
 * checker and the reference oracle, then compare what the backend
 * contract fixes: per-ray visibility (hit flag; bitwise closest-hit t)
 * and rays_completed. Predictor outcome counters and timing are free
 * to diverge. @return The failure message, or empty.
 */
std::string
runBackendPoint(const SimConfig &config, const FuzzScene &fs,
                const std::vector<Ray> &rays)
{
    try {
        auto run_with = [&](PredictorBackendKind backend) {
            InvariantChecker check;
            SimConfig c = config;
            c.check = &check;
            c.predictor.enabled = true;
            c.predictor.backend = backend;
            SimResult r = Simulation(c, fs.bvh,
                                     fs.scene.mesh.triangles())
                              .run(rays);
            checkAgainstReference(check, fs.bvh,
                                  fs.scene.mesh.triangles(), rays,
                                  r.rayResults);
            return r;
        };
        const SimResult hash =
            run_with(PredictorBackendKind::HashTable);
        const SimResult learned =
            run_with(PredictorBackendKind::Learned);
        if (hash.rayResults.size() != learned.rayResults.size())
            return "backends returned different ray-result counts";
        auto bits = [](float f) {
            std::uint32_t u;
            std::memcpy(&u, &f, sizeof u);
            return u;
        };
        for (std::size_t i = 0; i < hash.rayResults.size(); ++i) {
            const RayResult &a = hash.rayResults[i];
            const RayResult &b = learned.rayResults[i];
            if (a.hit != b.hit)
                return "backends disagree on visibility of ray " +
                       std::to_string(i);
            if (rays[i].kind != RayKind::Occlusion && a.hit &&
                bits(a.t) != bits(b.t))
                return "backends disagree bitwise on closest-hit t "
                       "of ray " +
                       std::to_string(i);
        }
        std::uint64_t done_hash = hash.stats.get("rays_completed");
        std::uint64_t done_learned =
            learned.stats.get("rays_completed");
        if (done_hash != done_learned)
            return "backends completed " + std::to_string(done_hash) +
                   " vs " + std::to_string(done_learned) + " rays";
        return std::string();
    } catch (const std::exception &e) {
        return e.what();
    }
}

/** Signature shared by the point runners (one per differential). */
using PointRunner = std::string (*)(const SimConfig &,
                                    const FuzzScene &,
                                    const std::vector<Ray> &);

/**
 * Greedy chunk-removal shrink (ddmin-lite): repeatedly try dropping
 * contiguous chunks of the failing ray set, keeping any reduction that
 * still fails, halving the chunk size until single rays were tried.
 */
std::vector<Ray>
shrinkRays(PointRunner run, const SimConfig &config,
           const FuzzScene &fs, std::vector<Ray> rays)
{
    std::size_t chunk = rays.size() / 2;
    while (chunk >= 1) {
        bool reduced = false;
        for (std::size_t start = 0;
             start + chunk <= rays.size() && rays.size() > 1;) {
            std::vector<Ray> candidate;
            candidate.reserve(rays.size() - chunk);
            candidate.insert(candidate.end(), rays.begin(),
                             rays.begin() + start);
            candidate.insert(candidate.end(),
                             rays.begin() + start + chunk, rays.end());
            if (!run(config, fs, candidate).empty()) {
                rays = std::move(candidate);
                reduced = true;
                // Re-test the same start: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1 && !reduced)
            break;
        chunk = chunk > 1 ? chunk / 2 : (reduced ? 1 : 0);
    }
    return rays;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char ch : s) {
        if (ch == '"' || ch == '\\')
            out += '\\', out += ch;
        else if (ch == '\n')
            out += "\\n";
        else if (static_cast<unsigned char>(ch) < 0x20)
            out += ' ';
        else
            out += ch;
    }
    return out;
}

/** The full reproducer record for one failing seed. */
std::string
reproducerJson(std::uint64_t seed, const FuzzScene &fs,
               const SimConfig &config, std::size_t original_rays,
               std::size_t shrunk_rays, const std::string &error)
{
    std::string out = "{\"seed\":" + std::to_string(seed);
    out += ",\"scene\":\"" + fs.scene.shortName + "\"";
    out += ",\"detail\":0.05";
    out += ",\"rays\":" + std::to_string(original_rays);
    out += ",\"shrunk_rays\":" + std::to_string(shrunk_rays);
    out += ",\"error\":\"" + jsonEscape(error) + "\"";
    out += ",\"config\":" + configToJson(config);
    out += "}";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t num_seeds = 64;
    std::uint64_t base_seed = 1;
    bool repro_mode = false;
    bool sharded_mode = false;
    bool kernel_mode = false;
    bool backend_mode = false;
    std::uint64_t repro_seed = 0;
    const char *repro_out = nullptr;

    for (int i = 1; i < argc; ++i) {
        auto arg_value = [&](const char *name) -> const char * {
            if (std::strcmp(argv[i], name) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "simfuzz: %s needs a value\n",
                             name);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char *v = arg_value("--seeds")) {
            num_seeds = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg_value("--base-seed")) {
            base_seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg_value("--repro")) {
            repro_mode = true;
            repro_seed = std::strtoull(v, nullptr, 10);
        } else if (const char *v = arg_value("--repro-out")) {
            repro_out = v;
        } else if (std::strcmp(argv[i], "--sharded") == 0) {
            sharded_mode = true;
        } else if (std::strcmp(argv[i], "--kernel") == 0) {
            kernel_mode = true;
        } else if (std::strcmp(argv[i], "--backend") == 0) {
            backend_mode = true;
        } else {
            std::fprintf(stderr,
                         "usage: simfuzz [--seeds N] [--base-seed B] "
                         "[--repro SEED] [--repro-out PATH] "
                         "[--sharded] [--kernel] [--backend]\n");
            return 2;
        }
    }

    // Two cheap scenes with different structure: an open cathedral
    // (deep BVH, long rays) and a cluttered room (dense occlusion).
    std::vector<FuzzScene> scenes;
    scenes.emplace_back(SceneId::Sibenik);
    scenes.emplace_back(SceneId::FireplaceRoom);

    std::uint64_t first = repro_mode ? repro_seed : base_seed;
    std::uint64_t count = repro_mode ? 1 : num_seeds;
    std::uint64_t failures = 0;
    if (static_cast<int>(sharded_mode) + static_cast<int>(kernel_mode) +
            static_cast<int>(backend_mode) >
        1) {
        std::fprintf(stderr,
                     "simfuzz: --sharded, --kernel and --backend are "
                     "separate differential targets; pick one\n");
        return 2;
    }
    const PointRunner run = sharded_mode   ? runShardedPoint
                            : kernel_mode  ? runKernelPoint
                            : backend_mode ? runBackendPoint
                                           : runPoint;
    if (sharded_mode)
        std::printf("simfuzz: sharded differential mode (sequential "
                    "vs simThreads 2 and 4)\n");
    if (kernel_mode)
        std::printf("simfuzz: kernel differential mode (scalar vs "
                    "SoA intersection kernels)\n");
    if (backend_mode)
        std::printf("simfuzz: backend differential mode (hash-table "
                    "vs learned predictor backend)\n");

    for (std::uint64_t s = 0; s < count; ++s) {
        std::uint64_t seed = first + s;
        Rng rng(seed, 0x51f0fu);
        const FuzzScene &fs = scenes[rng.nextBounded(
            static_cast<std::uint32_t>(scenes.size()))];
        SimConfig config = deriveConfig(rng, fs.bvh);
        std::vector<Ray> rays = deriveRays(rng, fs);

        std::string error = run(config, fs, rays);
        if (error.empty()) {
            std::printf("seed %llu: ok (%s, %zu rays)\n",
                        static_cast<unsigned long long>(seed),
                        fs.scene.shortName.c_str(), rays.size());
            continue;
        }

        failures++;
        std::printf("seed %llu: FAIL (%s, %zu rays)\n%s\n",
                    static_cast<unsigned long long>(seed),
                    fs.scene.shortName.c_str(), rays.size(),
                    error.c_str());
        std::vector<Ray> shrunk = shrinkRays(run, config, fs, rays);
        std::string repro = reproducerJson(
            seed, fs, config, rays.size(), shrunk.size(), error);
        std::printf("reproducer (rerun with --repro %llu; shrunk to "
                    "%zu rays):\n%s\n",
                    static_cast<unsigned long long>(seed),
                    shrunk.size(), repro.c_str());
        if (repro_out) {
            std::ofstream out(repro_out);
            out << repro << "\n";
            std::printf("reproducer written to %s\n", repro_out);
        }
        // First failure is enough: later seeds would bury the
        // reproducer, and CI wants a fast, loud signal.
        break;
    }

    if (failures == 0)
        std::printf("simfuzz: %llu seed(s) passed\n",
                    static_cast<unsigned long long>(count));
    return failures == 0 ? 0 : 1;
}
