/**
 * @file
 * Summarise a telemetry timeline JSON file emitted by the simulator's
 * TelemetrySampler (RTP_TELEMETRY=out.json, see docs/observability.md).
 *
 * Usage: timeline_report <telemetry.json>
 *
 * Counters in the timeline are cumulative at each sample cycle; this
 * tool differences consecutive samples into per-interval rates and
 * prints:
 *   - ASCII sparklines of the headline series (predictor hit rate,
 *     prediction accuracy, ray-buffer occupancy, RT-unit busy fraction,
 *     L1/L2 hit rates, DRAM busy fraction, ray completion throughput)
 *   - predictor warm-up analysis: the cycle at which the interval hit
 *     rate first reaches 80% of its steady-state (last-half mean) value
 *   - occupancy dips: intervals whose ray-buffer occupancy falls below
 *     half the run median, with the concurrent mispredict rate
 *
 * Exits 0 on a valid timeline, 1 on malformed input or I/O failure, 2
 * on usage errors, 3 on a valid timeline that is degraded (the sampler
 * dropped records, or fewer than 3 samples were taken — too short to
 * analyse). CI uses the exit code to smoke-test telemetry runs.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/schema.hpp"

namespace {

using rtp::JsonValue;

/** One aggregated (summed over SMs) sample. */
struct Row
{
    double cycle = 0;
    double busy = 0, stall = 0;
    double resident = 0, capacity = 0;
    double activeWarps = 0, eventDepth = 0, repackDepth = 0;
    double raysCompleted = 0;
    double predLookups = 0, predHits = 0;
    double verified = 0, mispredicted = 0;
    double l1Hits = 0, l1Misses = 0;
    double l2Hits = 0, l2Misses = 0;
    double dramBusyAccum = 0, dramBusySamples = 0, dramNumBanks = 0;
};

/** NaN marks intervals where a rate's denominator was zero. */
const double kNone = std::nan("");

bool
valid(double v)
{
    return !std::isnan(v);
}

/** Per-interval rate series derived from consecutive Rows. */
struct Series
{
    std::string name;
    std::vector<double> v; //!< one entry per interval; kNone = no data
    double scaleMax = 1.0; //!< sparkline full-scale (1.0 for ratios)
};

/** Resample @p v to at most @p width buckets (mean of valid points). */
std::vector<double>
resample(const std::vector<double> &v, std::size_t width)
{
    if (v.size() <= width)
        return v;
    std::vector<double> out(width, kNone);
    for (std::size_t b = 0; b < width; ++b) {
        std::size_t lo = b * v.size() / width;
        std::size_t hi = (b + 1) * v.size() / width;
        double sum = 0;
        std::size_t n = 0;
        for (std::size_t i = lo; i < hi && i < v.size(); ++i) {
            if (valid(v[i])) {
                sum += v[i];
                n++;
            }
        }
        if (n)
            out[b] = sum / static_cast<double>(n);
    }
    return out;
}

void
printSparkline(const Series &s)
{
    static const char kRamp[] = " .:-=+*#%@";
    const int kLevels = static_cast<int>(sizeof(kRamp) - 2);
    std::vector<double> r = resample(s.v, 60);
    double lo = 0.0, hi = s.scaleMax;
    if (hi <= 0.0) {
        // Auto-scale throughput-style series to their own peak.
        for (double x : r)
            if (valid(x))
                hi = std::max(hi, x);
        if (hi <= 0.0)
            hi = 1.0;
    }
    std::string line;
    double last = kNone, peak = 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (double x : s.v) {
        if (!valid(x))
            continue;
        sum += x;
        n++;
        peak = std::max(peak, x);
        last = x;
    }
    for (double x : r) {
        if (!valid(x)) {
            line += ' ';
            continue;
        }
        double t = (x - lo) / (hi - lo);
        int lvl = static_cast<int>(t * kLevels + 0.5);
        lvl = std::max(0, std::min(kLevels, lvl));
        line += kRamp[lvl];
    }
    std::printf("  %-14s |%s|\n", s.name.c_str(), line.c_str());
    if (n)
        std::printf("  %14s  mean=%.3f peak=%.3f final=%.3f "
                    "(full scale %.3g)\n",
                    "", sum / static_cast<double>(n), peak, last, hi);
    else
        std::printf("  %14s  (no data)\n", "");
}

double
fieldOf(const JsonValue &obj, const char *key)
{
    return obj.numberAt(key);
}

/** Median of the valid entries (0 when none). */
double
medianOf(const std::vector<double> &v)
{
    std::vector<double> s;
    for (double x : v)
        if (valid(x))
            s.push_back(x);
    if (s.empty())
        return 0.0;
    std::sort(s.begin(), s.end());
    return s[s.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <telemetry.json>\n", argv[0]);
        return 2;
    }

    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "timeline_report: cannot open %s\n",
                     argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    auto root = rtp::parseJson(buf.str(), &error);
    if (!root || !root->isObject()) {
        std::fprintf(stderr, "timeline_report: %s: invalid JSON: %s\n",
                     argv[1], error.c_str());
        return 1;
    }
    // Versioned schema at the document root; files without the key are
    // pre-versioning output. A newer version warns but still parses —
    // the telemetry fields this report reads are append-only.
    if (const JsonValue *ver = root->find("schema_version")) {
        if (ver->isNumber() &&
            !rtp::schemaVersionKnown(
                static_cast<std::uint64_t>(ver->number)))
            std::fprintf(stderr,
                         "timeline_report: warning: %s has "
                         "schema_version %.0f, newer than supported "
                         "%u; parsing anyway\n",
                         argv[1], ver->number,
                         rtp::kResultSchemaVersion);
    }
    const JsonValue *tel = root->find("telemetry");
    if (!tel || !tel->isObject()) {
        std::fprintf(stderr,
                     "timeline_report: %s: missing telemetry object\n",
                     argv[1]);
        return 1;
    }
    const JsonValue *samples = tel->find("samples");
    if (!samples || !samples->isArray()) {
        std::fprintf(stderr,
                     "timeline_report: %s: missing samples array\n",
                     argv[1]);
        return 1;
    }
    double period = tel->numberAt("period");
    double numSms = tel->numberAt("num_sms");
    double droppedRecords = tel->numberAt("dropped_records");

    // Flatten each sample: sum per-SM counters, keep global ones.
    std::vector<Row> rows;
    rows.reserve(samples->array.size());
    for (const JsonValue &s : samples->array) {
        if (!s.isObject()) {
            std::fprintf(stderr,
                         "timeline_report: %s: sample %zu is not an "
                         "object\n",
                         argv[1], rows.size());
            return 1;
        }
        const JsonValue *sms = s.find("sms");
        const JsonValue *global = s.find("global");
        if (!sms || !sms->isArray() || !global || !global->isObject()) {
            std::fprintf(stderr,
                         "timeline_report: %s: sample %zu lacks "
                         "sms/global\n",
                         argv[1], rows.size());
            return 1;
        }
        Row r;
        r.cycle = s.numberAt("cycle");
        for (const JsonValue &sm : sms->array) {
            r.busy += fieldOf(sm, "busy_cycles");
            r.stall += fieldOf(sm, "stall_cycles");
            r.resident += fieldOf(sm, "resident_rays");
            r.capacity += fieldOf(sm, "ray_buffer_capacity");
            r.activeWarps += fieldOf(sm, "active_warps");
            r.eventDepth += fieldOf(sm, "event_queue_depth");
            r.repackDepth += fieldOf(sm, "repack_queue_depth");
            r.raysCompleted += fieldOf(sm, "rays_completed");
            r.predLookups += fieldOf(sm, "pred_lookups");
            r.predHits += fieldOf(sm, "pred_hits");
            r.verified += fieldOf(sm, "rays_verified");
            r.mispredicted += fieldOf(sm, "rays_mispredicted");
            r.l1Hits += fieldOf(sm, "l1_hits");
            r.l1Misses += fieldOf(sm, "l1_misses");
        }
        r.l2Hits = global->numberAt("l2_hits");
        r.l2Misses = global->numberAt("l2_misses");
        r.dramBusyAccum = global->numberAt("dram_busy_accum");
        r.dramBusySamples = global->numberAt("dram_busy_samples");
        r.dramNumBanks = global->numberAt("dram_num_banks");
        rows.push_back(r);
    }

    std::printf("timeline_report: %s\n", argv[1]);
    std::printf("samples: %zu  period: %.0f cycles  sms: %.0f",
                rows.size(), period, numSms);
    if (!rows.empty())
        std::printf("  span: [%.0f..%.0f]", rows.front().cycle,
                    rows.back().cycle);
    std::printf("\n");
    if (droppedRecords > 0)
        std::printf("*** WARNING: %.0f samples were dropped (record "
                    "store full); the timeline tail is missing ***\n",
                    droppedRecords);
    if (rows.size() < 3) {
        std::printf("timeline too short to analyse (need >= 3 "
                    "samples; raise the workload or lower "
                    "RTP_TELEMETRY_PERIOD)\n");
        return 3;
    }

    // Difference consecutive samples into per-interval rate series.
    std::size_t n = rows.size() - 1;
    auto ratio = [](double num, double den) {
        return den > 0.0 ? num / den : kNone;
    };
    Series predRate{"pred hit rate", {}, 1.0};
    Series accuracy{"pred accuracy", {}, 1.0};
    Series occupancy{"occupancy", {}, 1.0};
    Series busyFrac{"busy fraction", {}, 1.0};
    Series l1Rate{"l1 hit rate", {}, 1.0};
    Series l2Rate{"l2 hit rate", {}, 1.0};
    Series dramBusy{"dram busy", {}, 1.0};
    Series throughput{"rays/kcycle", {}, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
        const Row &a = rows[i];
        const Row &b = rows[i + 1];
        double cycles = b.cycle - a.cycle;
        predRate.v.push_back(ratio(b.predHits - a.predHits,
                                   b.predLookups - a.predLookups));
        double verif = b.verified - a.verified;
        double mispred = b.mispredicted - a.mispredicted;
        accuracy.v.push_back(ratio(verif, verif + mispred));
        occupancy.v.push_back(ratio(b.resident, b.capacity));
        busyFrac.v.push_back(
            ratio(b.busy - a.busy, cycles * numSms));
        double l1h = b.l1Hits - a.l1Hits;
        double l1m = b.l1Misses - a.l1Misses;
        l1Rate.v.push_back(ratio(l1h, l1h + l1m));
        double l2h = b.l2Hits - a.l2Hits;
        double l2m = b.l2Misses - a.l2Misses;
        l2Rate.v.push_back(ratio(l2h, l2h + l2m));
        double busyAcc = b.dramBusyAccum - a.dramBusyAccum;
        double busySamp = b.dramBusySamples - a.dramBusySamples;
        dramBusy.v.push_back(
            busySamp > 0.0 && b.dramNumBanks > 0.0
                ? (busyAcc / busySamp) / b.dramNumBanks
                : kNone);
        throughput.v.push_back(
            cycles > 0.0
                ? (b.raysCompleted - a.raysCompleted) / cycles * 1000.0
                : kNone);
    }

    std::printf("\n== timelines (one column ~ %.0f cycles) ==\n",
                period * std::max<double>(
                             1.0, static_cast<double>(n) / 60.0));
    for (const Series *s :
         {&predRate, &accuracy, &occupancy, &busyFrac, &l1Rate,
          &l2Rate, &dramBusy, &throughput})
        printSparkline(*s);

    // Predictor warm-up: the hit rate climbs from zero (empty table) to
    // a steady-state plateau as training fills entries. Steady state is
    // the mean over the last half of the intervals; warm-up ends at the
    // first interval reaching 80% of it.
    std::printf("\n== predictor warm-up ==\n");
    double steady = 0.0;
    std::size_t steadyN = 0;
    for (std::size_t i = n / 2; i < n; ++i) {
        if (valid(predRate.v[i])) {
            steady += predRate.v[i];
            steadyN++;
        }
    }
    if (steadyN == 0 || steady <= 0.0) {
        std::printf("  no predictor activity in the timeline "
                    "(baseline run or predictor disabled)\n");
    } else {
        steady /= static_cast<double>(steadyN);
        std::size_t warm = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (valid(predRate.v[i]) &&
                predRate.v[i] >= 0.8 * steady) {
                warm = i;
                break;
            }
        }
        double firstRate =
            valid(predRate.v[0]) ? predRate.v[0] : 0.0;
        std::printf("  steady-state hit rate (last half): %.3f\n",
                    steady);
        std::printf("  first-interval hit rate:            %.3f\n",
                    firstRate);
        if (warm < n)
            std::printf("  warm-up ends (80%% of steady): cycle %.0f "
                        "(interval %zu of %zu)\n",
                        rows[warm + 1].cycle, warm + 1, n);
        else
            std::printf("  hit rate never reached 80%% of "
                        "steady-state\n");
    }

    // Occupancy dips: intervals whose occupancy drops below half the
    // run median, annotated with the concurrent mispredict rate.
    std::printf("\n== occupancy dips ==\n");
    double med = medianOf(occupancy.v);
    std::size_t dips = 0, worst = n;
    double worstVal = 2.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!valid(occupancy.v[i]) || med <= 0.0)
            continue;
        if (occupancy.v[i] < 0.5 * med) {
            dips++;
            if (occupancy.v[i] < worstVal) {
                worstVal = occupancy.v[i];
                worst = i;
            }
        }
    }
    std::printf("  median occupancy: %.3f\n", med);
    if (dips == 0) {
        std::printf("  no interval fell below half the median\n");
    } else {
        std::printf("  %zu of %zu intervals below half the median\n",
                    dips, n);
        double mispredRate =
            valid(accuracy.v[worst]) ? 1.0 - accuracy.v[worst] : 0.0;
        std::printf("  worst dip: occupancy %.3f at cycle %.0f "
                    "(interval mispredict rate %.3f)\n",
                    worstVal, rows[worst + 1].cycle, mispredRate);
    }

    return droppedRecords > 0 ? 3 : 0;
}
