/**
 * @file
 * Summarise a Chrome-trace JSON file emitted by the simulator's
 * TraceSink (RTP_TRACE=out.json, see docs/observability.md).
 *
 * Usage: trace_report <trace.json>
 *
 * Validates the file (well-formed JSON, traceEvents array, required
 * per-event fields) and prints:
 *   - per-warp critical path: warp lifetime spans, the longest warps
 *   - predictor outcome summary: mispredict restart cost and the
 *     node fetches wasted in abandoned verification traversals
 *   - cache miss latency percentiles per level (exact, from args.lat)
 *   - DRAM row-hit rate and bank pressure
 *   - repacker activity (full / timeout / drain flushes)
 *
 * Exits 0 on a valid trace, 1 on malformed input or I/O failure, 2 on
 * usage errors, 3 on a valid trace whose ring buffer dropped events
 * (every summary above is then computed from a truncated window and the
 * oldest — warm-up — events are the ones missing). CI uses the exit
 * code to smoke-test traced runs.
 */

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/schema.hpp"

namespace {

using rtp::JsonValue;

/** Exact nearest-rank percentile of a sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx = rank <= 1.0
                          ? 0
                          : static_cast<std::size_t>(rank + 0.5) - 1;
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

struct WarpSpan
{
    double ts = 0.0;
    double dur = 0.0;
    double tid = 0.0;
    double warp = 0.0;
    double rays = 0.0;
    bool repacked = false;
};

void
printLatencyLine(const char *label, std::vector<double> &lat)
{
    std::sort(lat.begin(), lat.end());
    std::printf("  %-12s n=%-8zu p50=%-7.0f p90=%-7.0f p99=%-7.0f "
                "max=%.0f\n",
                label, lat.size(), percentile(lat, 50.0),
                percentile(lat, 90.0), percentile(lat, 99.0),
                lat.empty() ? 0.0 : lat.back());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
        return 2;
    }

    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_report: cannot open %s\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::string error;
    auto root = rtp::parseJson(text, &error);
    if (!root) {
        std::fprintf(stderr, "trace_report: %s: invalid JSON: %s\n",
                     argv[1], error.c_str());
        return 1;
    }
    if (!root->isObject()) {
        std::fprintf(stderr, "trace_report: %s: root is not an object\n",
                     argv[1]);
        return 1;
    }
    // Versioned schema rides in otherData; traces without it are
    // pre-versioning output. A newer version warns but still parses —
    // the event fields this report reads are append-only.
    if (const JsonValue *other0 = root->find("otherData")) {
        const JsonValue *ver = other0->find("schema_version");
        if (ver && ver->isNumber() &&
            !rtp::schemaVersionKnown(
                static_cast<std::uint64_t>(ver->number)))
            std::fprintf(stderr,
                         "trace_report: warning: %s has "
                         "schema_version %.0f, newer than supported "
                         "%u; parsing anyway\n",
                         argv[1], ver->number,
                         rtp::kResultSchemaVersion);
    }
    const JsonValue *events = root->find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "trace_report: %s: missing traceEvents array\n",
                     argv[1]);
        return 1;
    }

    // Per-event validation + bucketing by display name.
    std::vector<WarpSpan> warps;
    std::vector<double> mispredictDur;
    std::vector<double> mispredictWaste;
    std::uint64_t verifies = 0, lookups = 0, lookupHits = 0;
    std::uint64_t trains = 0;
    std::vector<double> l1MissLat, l2MissLat, nodeFetchLat;
    std::uint64_t l1Hits = 0, l2Hits = 0, mshrMerges = 0;
    std::uint64_t inflightBypasses = 0;
    std::uint64_t dramAccesses = 0, dramRowHits = 0;
    double dramBusyAcc = 0.0;
    std::uint64_t collects = 0, collectedRays = 0;
    std::uint64_t flushFull = 0, flushTimeout = 0, flushDrain = 0;
    std::uint64_t warpDispatches = 0, nodeFetchIssues = 0;

    std::size_t i = 0;
    for (const JsonValue &ev : events->array) {
        if (!ev.isObject()) {
            std::fprintf(stderr,
                         "trace_report: event %zu is not an object\n",
                         i);
            return 1;
        }
        const JsonValue *name = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        if (!name || !name->isString() || !ph || !ph->isString()) {
            std::fprintf(
                stderr,
                "trace_report: event %zu lacks name/ph strings\n", i);
            return 1;
        }
        if (ph->str != "M") {
            const JsonValue *ts = ev.find("ts");
            if (!ts || !ts->isNumber()) {
                std::fprintf(stderr,
                             "trace_report: event %zu (%s) lacks a "
                             "numeric ts\n",
                             i, name->str.c_str());
                return 1;
            }
        }
        ++i;

        const JsonValue *args = ev.find("args");
        const std::string &n = name->str;
        if (n == "warp") {
            WarpSpan w;
            w.ts = ev.numberAt("ts");
            w.dur = ev.numberAt("dur");
            w.tid = ev.numberAt("tid");
            if (args) {
                w.warp = args->numberAt("warp");
                w.rays = args->numberAt("rays");
            }
            warps.push_back(w);
        } else if (n == "warp_dispatch") {
            warpDispatches++;
        } else if (n == "mispredict") {
            mispredictDur.push_back(ev.numberAt("dur"));
            if (args)
                mispredictWaste.push_back(
                    args->numberAt("wasted_fetches"));
        } else if (n == "pred_verify") {
            verifies++;
        } else if (n == "pred_lookup") {
            lookups++;
            if (args && args->numberAt("hit") != 0.0)
                lookupHits++;
        } else if (n == "pred_train") {
            trains++;
        } else if (n == "l1_miss") {
            if (args)
                l1MissLat.push_back(args->numberAt("lat"));
        } else if (n == "l2_miss") {
            if (args)
                l2MissLat.push_back(args->numberAt("lat"));
        } else if (n == "l1_hit") {
            l1Hits++;
        } else if (n == "l2_hit") {
            l2Hits++;
        } else if (n == "l1_mshr_merge" || n == "l2_mshr_merge") {
            mshrMerges++;
        } else if (n == "l1_inflight_bypass" ||
                   n == "l2_inflight_bypass") {
            inflightBypasses++;
        } else if (n == "dram_access") {
            dramAccesses++;
            if (args) {
                if (args->numberAt("row_hit") != 0.0)
                    dramRowHits++;
                dramBusyAcc += args->numberAt("busy_banks");
            }
        } else if (n == "node_fetch") {
            if (args)
                nodeFetchLat.push_back(args->numberAt("lat"));
        } else if (n == "node_fetch_issue") {
            nodeFetchIssues++;
        } else if (n == "repack_collect") {
            collects++;
            if (args)
                collectedRays +=
                    static_cast<std::uint64_t>(args->numberAt("count"));
        } else if (n == "repack_flush") {
            double kind = args ? args->numberAt("timeout") : 0.0;
            if (kind == 1.0)
                flushTimeout++;
            else if (kind == 2.0)
                flushDrain++;
            else
                flushFull++;
        }
    }

    const JsonValue *other = root->find("otherData");
    double dropped = other ? other->numberAt("dropped_events") : 0.0;
    std::printf("trace_report: %s\n", argv[1]);
    std::printf("events: %zu", events->array.size());
    if (other)
        std::printf("  (buffered=%.0f dropped=%.0f)",
                    other->numberAt("buffered_events"), dropped);
    std::printf("\n");
    if (dropped > 0.0)
        std::printf("*** WARNING: the trace ring dropped %.0f events; "
                    "every summary below is computed from a truncated "
                    "window (the oldest events are missing). Re-trace "
                    "with a larger sink capacity or a smaller "
                    "workload. ***\n",
                    dropped);

    std::printf("\n== warp critical path ==\n");
    std::printf("  dispatches=%llu completed=%zu\n",
                static_cast<unsigned long long>(warpDispatches),
                warps.size());
    if (!warps.empty()) {
        double total = 0.0, maxd = 0.0;
        for (const WarpSpan &w : warps) {
            total += w.dur;
            maxd = std::max(maxd, w.dur);
        }
        std::printf("  mean_lifetime=%.1f max_lifetime=%.0f cycles\n",
                    total / static_cast<double>(warps.size()), maxd);
        std::sort(warps.begin(), warps.end(),
                  [](const WarpSpan &a, const WarpSpan &b) {
                      return a.dur > b.dur;
                  });
        std::size_t top = std::min<std::size_t>(5, warps.size());
        std::printf("  longest warps (the critical path tail):\n");
        for (std::size_t k = 0; k < top; ++k)
            std::printf("    sm=%.0f warp=%.0f rays=%.0f "
                        "[%.0f..%.0f] dur=%.0f\n",
                        warps[k].tid, warps[k].warp, warps[k].rays,
                        warps[k].ts, warps[k].ts + warps[k].dur,
                        warps[k].dur);
    }

    std::printf("\n== predictor ==\n");
    std::printf("  lookups=%llu hits=%llu verifies=%llu "
                "mispredicts=%zu trains=%llu\n",
                static_cast<unsigned long long>(lookups),
                static_cast<unsigned long long>(lookupHits),
                static_cast<unsigned long long>(verifies),
                mispredictDur.size(),
                static_cast<unsigned long long>(trains));
    if (!mispredictDur.empty()) {
        double dtot = 0.0, wtot = 0.0;
        for (double d : mispredictDur)
            dtot += d;
        for (double w : mispredictWaste)
            wtot += w;
        std::sort(mispredictDur.begin(), mispredictDur.end());
        std::printf("  restart cost: mean=%.1f p90=%.0f max=%.0f "
                    "cycles; mean wasted fetches=%.2f\n",
                    dtot / static_cast<double>(mispredictDur.size()),
                    percentile(mispredictDur, 90.0),
                    mispredictDur.back(),
                    mispredictWaste.empty()
                        ? 0.0
                        : wtot / static_cast<double>(
                                     mispredictWaste.size()));
    }

    std::printf("\n== memory ==\n");
    std::printf("  l1: hits=%llu  l2: hits=%llu  mshr_merges=%llu "
                "inflight_bypasses=%llu\n",
                static_cast<unsigned long long>(l1Hits),
                static_cast<unsigned long long>(l2Hits),
                static_cast<unsigned long long>(mshrMerges),
                static_cast<unsigned long long>(inflightBypasses));
    printLatencyLine("l1_miss", l1MissLat);
    printLatencyLine("l2_miss", l2MissLat);
    printLatencyLine("node_fetch", nodeFetchLat);
    std::printf("  node_fetch warp-merged duplicates=%llu\n",
                static_cast<unsigned long long>(nodeFetchIssues));
    if (dramAccesses > 0)
        std::printf("  dram: accesses=%llu row_hit_rate=%.3f "
                    "mean_busy_banks=%.2f\n",
                    static_cast<unsigned long long>(dramAccesses),
                    static_cast<double>(dramRowHits) /
                        static_cast<double>(dramAccesses),
                    dramBusyAcc / static_cast<double>(dramAccesses));

    std::printf("\n== repacker ==\n");
    std::printf("  collects=%llu rays=%llu flushes: full=%llu "
                "timeout=%llu drain=%llu\n",
                static_cast<unsigned long long>(collects),
                static_cast<unsigned long long>(collectedRays),
                static_cast<unsigned long long>(flushFull),
                static_cast<unsigned long long>(flushTimeout),
                static_cast<unsigned long long>(flushDrain));
    if (dropped > 0.0) {
        std::fprintf(stderr,
                     "trace_report: %s: %.0f events were dropped by "
                     "the trace ring — summaries above are from a "
                     "truncated window\n",
                     argv[1], dropped);
        return 3;
    }
    return 0;
}
